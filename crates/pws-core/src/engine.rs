//! The serial personalized search engine.
//!
//! A thin frontend over [`EngineCore`]: one owned map of per-user state and
//! one map of per-query statistics, mutated through `&mut self`. This is
//! the paper's original middleware shape — one caller at a time — and the
//! shape the offline evaluation harness replays. For concurrent serving
//! (`&self + Send + Sync`, user-sharded) see the `pws-serve` crate, which
//! drives the same [`EngineCore`].

use crate::core::EngineCore;
pub use crate::core::SearchTurn;
use crate::config::EngineConfig;
use crate::state::UserState;
use pws_click::{Impression, UserId};
use pws_entropy::QueryStats;
use pws_profile::UserHistory;
use std::collections::HashMap;

/// The engine: baseline retrieval + per-user personalization state.
///
/// Borrows an immutable baseline retrieval backend (the in-memory
/// [`pws_index::SearchEngine`] or the segmented on-disk
/// [`pws_index::SegmentedIndex`], via [`pws_index::RetrievalBackend`]) and location
/// ontology; owns all per-user learned state. Every
/// [`search`](Self::search) / [`observe`](Self::observe) stage records
/// wall-clock latency into the process-global [`pws_obs`] registry under
/// `engine.*` stage names.
///
/// ```
/// use pws_core::{EngineConfig, PersonalizedSearchEngine};
/// use pws_click::UserId;
/// use pws_geo::{LocId, LocationOntology};
/// use pws_index::{IndexBuilder, StoredDoc};
///
/// // A two-document index and a one-city world.
/// let mut builder = IndexBuilder::new();
/// builder.add(StoredDoc::new(0, "http://a.test", "Harbor dining",
///     "seafood restaurant by the harbor"));
/// builder.add(StoredDoc::new(1, "http://b.test", "Grill house",
///     "steak restaurant with grilled specials"));
/// let index = builder.build();
/// let mut world = LocationOntology::new();
/// let region = world.add(LocId::WORLD, "westland", vec![]);
/// world.add(region, "alden", vec![]);
///
/// let mut engine = PersonalizedSearchEngine::new(&index, &world, EngineConfig::default());
/// let turn = engine.search(UserId(0), "restaurant");
/// assert_eq!(turn.hits.len(), 2);
/// assert_eq!(turn.hits[0].rank, 1);
/// ```
pub struct PersonalizedSearchEngine<'a> {
    core: EngineCore<'a>,
    users: HashMap<UserId, UserState>,
    query_stats: HashMap<String, QueryStats>,
}

impl<'a> PersonalizedSearchEngine<'a> {
    /// Build an engine over an already-built baseline index.
    pub fn new(
        base: &'a dyn pws_index::RetrievalBackend,
        world: &'a pws_geo::LocationOntology,
        cfg: EngineConfig,
    ) -> Self {
        PersonalizedSearchEngine {
            core: EngineCore::new(base, world, cfg),
            users: HashMap::new(),
            query_stats: HashMap::new(),
        }
    }

    /// Enable proximity-smoothed location scoring (the GPS extension):
    /// preference for a city also endorses geographically nearby places,
    /// with the exponential kernel scale `scale_km`.
    pub fn with_geo(mut self, coords: &'a pws_geo::WorldCoords, scale_km: f64) -> Self {
        self.core = self.core.with_geo(coords, scale_km);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        self.core.config()
    }

    /// The shared read side this engine drives.
    pub fn core(&self) -> &EngineCore<'a> {
        &self.core
    }

    /// Borrow a user's state (if the user has been seen).
    pub fn user_state(&self, user: UserId) -> Option<&UserState> {
        self.users.get(&user)
    }

    /// Accumulated statistics for a query string (if seen).
    pub fn query_stats(&self, query_text: &str) -> Option<&QueryStats> {
        self.query_stats.get(&EngineCore::query_key(query_text))
    }

    /// Number of distinct users with state.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Execute one personalized search for `user`.
    pub fn search(&mut self, user: UserId, query_text: &str) -> SearchTurn {
        let state = self.users.entry(user).or_default();
        let stats = self.query_stats.get(&EngineCore::query_key(query_text));
        self.core.search_user(user, query_text, state, stats)
    }

    /// [`search`](Self::search) plus a filled-in per-query decision
    /// trace: stage timings, extracted concepts, β provenance, and every
    /// pool candidate's feature vector and base→final rank movement. The
    /// returned turn is byte-identical to what `search` would produce.
    pub fn search_traced(
        &mut self,
        user: UserId,
        query_text: &str,
    ) -> (SearchTurn, pws_obs::trace::QueryTrace) {
        let mut trace = pws_obs::trace::QueryTrace::new(user.0, query_text);
        let state = self.users.entry(user).or_default();
        let stats = self.query_stats.get(&EngineCore::query_key(query_text));
        let turn = self.core.search_user_traced(user, query_text, state, stats, Some(&mut trace));
        trace.total_nanos = trace.stage_nanos_total();
        (turn, trace)
    }

    /// Fold the user's clicks on a turn back into the engine.
    ///
    /// `impression.results` must correspond to `turn.hits` (same order) —
    /// the simulator guarantees this by construction.
    pub fn observe(&mut self, turn: &SearchTurn, impression: &Impression) {
        let stats = self
            .query_stats
            .entry(EngineCore::query_key(&turn.query_text))
            .or_default();
        let state = self.users.entry(turn.user).or_default();
        self.core.observe_user(turn, impression, state, stats);
    }

    /// Reset one user's learned state (testing / right-to-be-forgotten).
    pub fn forget_user(&mut self, user: UserId) {
        self.users.remove(&user);
    }

    /// Export one user's learned state as JSON — profile portability and
    /// the user-facing "what do you know about me" view.
    ///
    /// The export is a [`crate::UserExport`]: the [`UserState`] *plus* the
    /// per-query statistics for every query key in `state.seen_queries` —
    /// without them, `choose_beta()` on the importing side sees no click
    /// entropies and export→import→replay silently diverges.
    ///
    /// `Ok(None)` when the user has no state; `Err` if the state fails
    /// to serialize (corrupt floats, etc.) — serialization is *expected*
    /// to be infallible, but a corrupt snapshot must surface as an error
    /// the caller can count and handle, never a panic.
    pub fn export_user(&self, user: UserId) -> Result<Option<String>, serde_json::Error> {
        let Some(state) = self.users.get(&user) else { return Ok(None) };
        let query_stats = state
            .seen_queries
            .iter()
            .filter_map(|k| self.query_stats.get(k).map(|s| (k.clone(), s.clone())))
            .collect();
        let export = crate::UserExport { state: state.clone(), query_stats };
        serde_json::to_string(&export).map(Some)
    }

    /// Import a previously exported user record, replacing any existing
    /// state for that user id and *merging* the record's per-query
    /// statistics into entries this engine has not seen yet (a key that
    /// already exists locally keeps the local accumulator — re-importing
    /// into the same engine must not double-count the user's clicks).
    ///
    /// Accepts both the current [`crate::UserExport`] format and a legacy
    /// bare [`UserState`] JSON (imported with empty stats). Returns
    /// [`ImportError::Json`] on malformed JSON and
    /// [`ImportError::Invalid`] when the decoded record fails
    /// [`UserState::validate`] — wrong-dimension or non-finite weights
    /// must never reach the scoring path.
    pub fn import_user(&mut self, user: UserId, json: &str) -> Result<(), ImportError> {
        let export = parse_user_export(json)?;
        for (key, stats) in export.query_stats {
            self.query_stats.entry(key).or_insert(stats);
        }
        self.users.insert(user, export.state);
        Ok(())
    }

    /// A view of the revisit history for external diagnostics.
    pub fn user_history(&self, user: UserId) -> Option<&UserHistory> {
        self.users.get(&user).map(|s| &s.history)
    }
}

/// Why a user import was rejected.
#[derive(Debug)]
pub enum ImportError {
    /// The JSON parsed as neither export format.
    Json(serde_json::Error),
    /// The decoded record failed structural validation
    /// ([`UserState::validate`] / [`crate::validate_query_stats`]).
    Invalid(crate::StateError),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Json(e) => write!(f, "user import: malformed JSON: {e}"),
            ImportError::Invalid(e) => write!(f, "user import: invalid record: {e}"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Parse + validate an exported user record. Tries the current
/// [`crate::UserExport`] envelope first, then falls back to a legacy bare
/// [`UserState`] JSON (imported with empty query stats). Every accepted
/// record has passed [`UserState::validate`] and
/// [`crate::validate_query_stats`] on all stats entries.
pub fn parse_user_export(json: &str) -> Result<crate::UserExport, ImportError> {
    let export = match serde_json::from_str::<crate::UserExport>(json) {
        Ok(e) => e,
        Err(outer) => match serde_json::from_str::<UserState>(json) {
            Ok(state) => {
                crate::UserExport { state, query_stats: std::collections::BTreeMap::new() }
            }
            Err(_) => return Err(ImportError::Json(outer)),
        },
    };
    export.validate().map_err(ImportError::Invalid)?;
    Ok(export)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BlendStrategy, PersonalizationMode};
    use crate::core::{merge_pools, normalize_pool};
    use pws_click::{Click, ShownResult};
    use pws_corpus::query::QueryId;
    use pws_geo::{LocId, LocationOntology};
    use pws_index::{IndexBuilder, SearchEngine, SearchHit, StoredDoc};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o.add(s, "lakemoor", vec![]);
        o
    }

    fn index() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Seafood guide",
            "seafood restaurant guide with lobster in alden harbor area"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Seafood lakemoor",
            "seafood restaurant in lakemoor with fresh oysters"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Sushi place",
            "sushi restaurant downtown with omakase menu in alden"));
        b.add(StoredDoc::new(3, "http://d.test/3", "Steak house",
            "steak restaurant grill with ribeye specials"));
        b.build()
    }

    fn impression_from(turn: &SearchTurn, clicked_ranks: &[usize]) -> Impression {
        Impression {
            user: turn.user,
            query: QueryId(0),
            query_text: turn.query_text.clone(),
            results: turn
                .hits
                .iter()
                .map(|h| ShownResult {
                    doc: h.doc,
                    rank: h.rank,
                    url: h.url.to_string(),
                    title: h.title.to_string(),
                    snippet: h.snippet.clone(),
                })
                .collect(),
            clicks: clicked_ranks
                .iter()
                .filter_map(|&r| {
                    turn.hits
                        .iter()
                        .find(|h| h.rank == r)
                        .map(|h| Click { doc: h.doc, rank: r, dwell: 600 })
                })
                .collect(),
        }
    }

    #[test]
    fn baseline_mode_returns_base_order() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::Baseline),
        );
        let turn = e.search(UserId(0), "seafood restaurant");
        let base = idx.search("seafood restaurant", 10);
        let turn_docs: Vec<u32> = turn.hits.iter().map(|h| h.doc).collect();
        let base_docs: Vec<u32> = base.iter().map(|h| h.doc).collect();
        assert_eq!(turn_docs, base_docs);
        assert!(!turn.personalized);
    }

    #[test]
    fn empty_query_is_safe() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "zzzz unknown");
        assert!(turn.hits.is_empty());
        assert!(turn.features.is_empty());
        // Observing an empty impression must not panic.
        let imp = impression_from(&turn, &[]);
        e.observe(&turn, &imp);
    }

    #[test]
    fn clicks_on_a_city_build_location_preference() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let user = UserId(7);
        // Repeatedly click the lakemoor result for "seafood restaurant".
        for _ in 0..6 {
            let turn = e.search(user, "seafood restaurant");
            let lakemoor_rank = turn
                .hits
                .iter()
                .find(|h| h.doc == 1)
                .map(|h| h.rank)
                .expect("lakemoor doc in page");
            let imp = impression_from(&turn, &[lakemoor_rank]);
            e.observe(&turn, &imp);
        }
        let state = e.user_state(user).unwrap();
        let lakemoor = LocId(5);
        assert!(state.location.weight(lakemoor) > 0.0);
        assert_eq!(state.location.preferred_city(&w), Some(lakemoor));
        // After learning, the lakemoor doc should be promoted to rank 1.
        let turn = e.search(user, "seafood restaurant");
        assert_eq!(turn.hits[0].doc, 1, "personalization should surface lakemoor doc");
        assert!(turn.personalized);
    }

    #[test]
    fn content_clicks_build_content_preference() {
        let idx = index();
        let w = world();
        // Loose extraction thresholds: with only four docs in the fixture,
        // "sushi" appears in a single snippet and the default
        // min_snippet_freq=2 would drop it.
        let mut e = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig {
                concept_cfg: pws_concepts::ConceptConfig {
                    min_support: 0.0,
                    min_snippet_freq: 1,
                    ..Default::default()
                },
                ..EngineConfig::for_mode(PersonalizationMode::ContentOnly)
            },
        );
        let user = UserId(3);
        for _ in 0..6 {
            let turn = e.search(user, "restaurant");
            let sushi_rank = turn.hits.iter().find(|h| h.doc == 2).map(|h| h.rank);
            let Some(r) = sushi_rank else { continue };
            let imp = impression_from(&turn, &[r]);
            e.observe(&turn, &imp);
        }
        let state = e.user_state(user).unwrap();
        assert!(state.content.weight("sushi") > 0.0);
        let turn = e.search(user, "restaurant");
        assert_eq!(turn.hits[0].doc, 2, "sushi doc should be promoted");
    }

    #[test]
    fn modes_set_beta_extremes() {
        let idx = index();
        let w = world();
        let mut c = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::ContentOnly),
        );
        assert_eq!(c.search(UserId(0), "restaurant").beta, 0.0);
        let mut l = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::LocationOnly),
        );
        assert_eq!(l.search(UserId(0), "restaurant").beta, 1.0);
        let mut f = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig {
                blend: BlendStrategy::Fixed(0.3),
                ..EngineConfig::default()
            },
        );
        assert!((f.search(UserId(0), "restaurant").beta - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_and_cold_paths_report_mode_beta() {
        // Regression: the empty-pool early return used to hard-code
        // β = 0.5, misreporting ContentOnly (β = 0) and LocationOnly
        // (β = 1) turns in downstream β analyses.
        let idx = index();
        let w = world();
        for (mode, want) in [
            (PersonalizationMode::ContentOnly, 0.0),
            (PersonalizationMode::LocationOnly, 1.0),
            (PersonalizationMode::Baseline, 0.5),
        ] {
            let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::for_mode(mode));
            let turn = e.search(UserId(0), "zzzz unknown");
            assert!(turn.hits.is_empty());
            assert_eq!(turn.beta, want, "empty-pool β for {mode:?}");
        }
        // A fixed combined blend must also survive the empty path.
        let mut e = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig { blend: BlendStrategy::Fixed(0.8), ..EngineConfig::default() },
        );
        assert!((e.search(UserId(0), "zzzz unknown").beta - 0.8).abs() < 1e-12);
        // Baseline mode reports 0.5 on non-empty pools too (by definition).
        let mut b = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::Baseline),
        );
        assert_eq!(b.search(UserId(0), "restaurant").beta, 0.5);
    }

    #[test]
    fn page_features_match_serving_scale() {
        // Regression for the train/serve feature skew: the page features a
        // turn carries into pair mining / training must use the same
        // pool-normalized base score the ranker scored with — not the raw
        // BM25 score.
        let idx = index();
        let w = world();
        // Cold user, no augmentation possible → the pool is exactly the
        // baseline retrieval, so the expected normalization is checkable
        // from outside.
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "seafood restaurant");
        assert!(turn.personalized);
        let pool = idx.search("seafood restaurant", e.config().rerank_pool);
        let max = pool.iter().map(|h| h.score).fold(0.0_f64, f64::max);
        assert!(max > 0.0);
        for (h, f) in turn.hits.iter().zip(&turn.features) {
            let raw = pool.iter().find(|p| p.doc == h.doc).expect("page doc in pool").score;
            assert!(
                (f[0] - raw / max).abs() < 1e-12,
                "doc {}: feature {} != pool-normalized {}",
                h.doc,
                f[0],
                raw / max
            );
            // The raw BM25 scale would violate [0, 1].
            assert!(f[0] > 0.0 && f[0] <= 1.0);
        }
    }

    #[test]
    fn augmentation_guard_is_token_boundary_aware() {
        let idx = index();
        let w = world();
        let e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let core = e.core();
        // Exact and multi-word mentions are detected…
        assert!(core.query_mentions_city("restaurants in alden", "alden"));
        assert!(core.query_mentions_city("Alden harbor seafood", "alden"));
        assert!(core.query_mentions_city("best port alden food", "port alden"));
        // …but substrings of longer tokens are not (the "yorkshire"
        // suppressing "york" bug)…
        assert!(!core.query_mentions_city("aldenshire seafood", "alden"));
        assert!(!core.query_mentions_city("restaurants in yorkshire", "york"));
        // …and multi-word names must not match across token boundaries.
        assert!(!core.query_mentions_city("port of call near alden", "port alden"));
    }

    #[test]
    fn adaptive_beta_starts_neutral_then_tracks_stats() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "restaurant");
        assert_eq!(turn.beta, 0.5, "no stats yet → neutral");
        // Feed diverse location clicks from two users.
        for (u, doc) in [(0u32, 0u32), (1, 1), (0, 0), (1, 1), (0, 0), (1, 1)] {
            let turn = e.search(UserId(u), "restaurant");
            if let Some(h) = turn.hits.iter().find(|h| h.doc == doc) {
                let imp = impression_from(&turn, &[h.rank]);
                e.observe(&turn, &imp);
            }
        }
        assert!(e.query_stats("restaurant").is_some());
        let beta = e.search(UserId(9), "restaurant").beta;
        assert!(beta > 0.0 && beta < 1.0);
    }

    #[test]
    fn ranks_are_reassigned_after_rerank() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "restaurant");
        for (i, h) in turn.hits.iter().enumerate() {
            assert_eq!(h.rank, i + 1);
        }
        assert_eq!(turn.features.len(), turn.hits.len());
        assert_eq!(turn.ontology.content_by_snippet.len(), turn.hits.len());
    }

    #[test]
    fn traced_search_matches_untraced_and_fills_trace() {
        let idx = index();
        let w = world();
        let user = UserId(7);
        // Two identically-trained engines: one searches untraced, the
        // other traced. The pages must match byte-for-byte.
        let mut plain = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let mut traced = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        for e in [&mut plain, &mut traced] {
            for _ in 0..4 {
                let turn = e.search(user, "seafood restaurant");
                if let Some(h) = turn.hits.iter().find(|h| h.doc == 1) {
                    let imp = impression_from(&turn, &[h.rank]);
                    e.observe(&turn, &imp);
                }
            }
        }
        let want = plain.search(user, "seafood restaurant");
        let (turn, trace) = traced.search_traced(user, "seafood restaurant");
        let docs = |t: &SearchTurn| t.hits.iter().map(|h| h.doc).collect::<Vec<_>>();
        assert_eq!(docs(&turn), docs(&want));
        assert_eq!(turn.features, want.features);
        assert_eq!(turn.beta, want.beta);

        // The trace carries the full decision record.
        assert_eq!(trace.user, 7);
        assert_eq!(trace.query_text, "seafood restaurant");
        assert!(trace.personalized);
        assert_eq!(trace.beta.value, turn.beta);
        let stage_names: Vec<&str> = trace.stages.iter().map(|s| s.stage).collect();
        for required in ["engine.retrieval", "engine.concepts", "engine.features",
                         "engine.beta", "engine.rerank"] {
            assert!(stage_names.contains(&required), "missing stage {required}");
        }
        // Every pool candidate appears, in final-rank order, with a full
        // feature vector; the page prefix matches the returned hits.
        assert!(!trace.results.is_empty());
        assert_eq!(trace.feature_names.len(), pws_profile::FEATURE_DIM);
        for (i, r) in trace.results.iter().enumerate() {
            assert_eq!(r.final_rank, i + 1);
            assert_eq!(r.features.len(), pws_profile::FEATURE_DIM);
        }
        let page_docs: Vec<u32> = trace
            .results
            .iter()
            .filter(|r| r.on_page)
            .map(|r| r.doc)
            .collect();
        assert_eq!(page_docs, docs(&turn));
        // base_rank is a permutation of 1..=pool_size.
        let mut base: Vec<usize> = trace.results.iter().map(|r| r.base_rank).collect();
        base.sort_unstable();
        assert_eq!(base, (1..=trace.results.len()).collect::<Vec<_>>());
        // Concepts were extracted over the pool.
        assert!(!trace.content_concepts.is_empty() || !trace.location_concepts.is_empty());
    }

    #[test]
    fn traced_baseline_search_traces_page_in_base_order() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::Baseline),
        );
        let (turn, trace) = e.search_traced(UserId(0), "seafood restaurant");
        assert!(!trace.personalized);
        assert_eq!(trace.beta.value, 0.5);
        assert_eq!(
            trace.beta.provenance,
            pws_obs::trace::BetaProvenance::Mode
        );
        assert_eq!(trace.results.len(), turn.hits.len());
        for (r, h) in trace.results.iter().zip(&turn.hits) {
            assert_eq!(r.doc, h.doc);
            assert_eq!(r.base_rank, r.final_rank, "baseline never moves results");
            assert_eq!(r.rank_delta(), 0);
            assert!(r.on_page);
        }
    }

    #[test]
    fn retraining_changes_model_weights() {
        let idx = index();
        let w = world();
        let cfg = EngineConfig { retrain_every: 2, ..EngineConfig::default() };
        let mut e = PersonalizedSearchEngine::new(&idx, &w, cfg);
        let user = UserId(1);
        let prior = UserState::new().model.weights.clone();
        for _ in 0..4 {
            let turn = e.search(user, "restaurant");
            // Click the last result to generate skip-above pairs.
            let last = turn.hits.last().map(|h| h.rank);
            if let Some(r) = last {
                let imp = impression_from(&turn, &[r]);
                e.observe(&turn, &imp);
            }
        }
        let state = e.user_state(user).unwrap();
        assert!(!state.pairs.is_empty());
        assert_ne!(state.model.weights, prior, "model should have been retrained");
    }

    #[test]
    fn forget_user_clears_state() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "restaurant");
        let imp = impression_from(&turn, &[1]);
        e.observe(&turn, &imp);
        assert!(e.user_state(UserId(0)).is_some());
        e.forget_user(UserId(0));
        assert!(e.user_state(UserId(0)).is_none());
    }

    #[test]
    fn user_state_export_import_round_trips() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let user = UserId(4);
        for _ in 0..3 {
            let turn = e.search(user, "seafood restaurant");
            let imp = impression_from(&turn, &[1]);
            e.observe(&turn, &imp);
        }
        let json = e.export_user(user).expect("serializable").expect("state exists");
        let before = e.user_state(user).unwrap().model.weights.clone();

        // Import into a fresh engine: same learned state, same ranking.
        let mut e2 = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        e2.import_user(user, &json).expect("import");
        let after = e2.user_state(user).unwrap();
        assert_eq!(after.model.weights, before);
        assert_eq!(after.observations, 3);
        let page1: Vec<u32> = e.search(user, "restaurant").hits.iter().map(|h| h.doc).collect();
        let page2: Vec<u32> = e2.search(user, "restaurant").hits.iter().map(|h| h.doc).collect();
        assert_eq!(page1, page2);

        // Malformed JSON is rejected.
        assert!(e2.import_user(user, "{not json").is_err());
        // Unknown users export Ok(None).
        assert!(e.export_user(UserId(999)).expect("no error").is_none());
    }

    #[test]
    fn geo_smoothing_scores_nearby_cities() {
        let idx = index();
        let w = world();
        let coords = pws_geo::WorldCoords::generate(&w, 5);
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default())
            .with_geo(&coords, 500.0);
        let user = UserId(2);
        // Train on lakemoor clicks as in the non-geo test.
        for _ in 0..4 {
            let turn = e.search(user, "seafood restaurant");
            if let Some(h) = turn.hits.iter().find(|h| h.doc == 1) {
                let imp = impression_from(&turn, &[h.rank]);
                e.observe(&turn, &imp);
            }
        }
        // The engine still works end-to-end and ranks deterministically.
        let turn = e.search(user, "seafood restaurant");
        assert!(!turn.hits.is_empty());
        assert_eq!(turn.features.len(), turn.hits.len());
        // Geo scoring endorses *all* locations somewhat (exp kernel > 0),
        // so the alden doc's location feature is nonzero too once the
        // profile is warm — unlike the exact-match scorer.
        let state = e.user_state(user).unwrap();
        assert!(!state.location.is_empty());
    }

    #[test]
    fn merge_pools_dedups_and_sorts() {
        let h = |doc: u32, score: f64| SearchHit {
            doc,
            score,
            rank: 1,
            url: format!("u{doc}").into(),
            title: "t".into(),
            snippet: "s".into(),
        };
        let mut pool = vec![(h(0, 1.0), 1.0), (h(1, 0.5), 0.5)];
        merge_pools(&mut pool, vec![(h(1, 0.9), 0.9), (h(2, 0.7), 0.7)]);
        let docs: Vec<u32> = pool.iter().map(|(x, _)| x.doc).collect();
        assert_eq!(docs, vec![0, 1, 2]);
        assert_eq!(pool[1].1, 0.9, "kept the higher normalized score");
    }

    #[test]
    fn normalize_pool_unit_max() {
        let h = |doc: u32, score: f64| SearchHit {
            doc,
            score,
            rank: 1,
            url: format!("u{doc}").into(),
            title: "t".into(),
            snippet: "s".into(),
        };
        let pool = normalize_pool(&[h(0, 8.0), h(1, 2.0)]);
        assert_eq!(pool[0].1, 1.0);
        assert_eq!(pool[1].1, 0.25);
        assert!(normalize_pool(&[]).is_empty());
    }
}
