//! The personalized search engine.

use crate::config::{BlendStrategy, EngineConfig, PersonalizationMode};
use crate::state::UserState;
use pws_click::{Impression, UserId};
use pws_concepts::QueryConceptOntology;
use pws_entropy::{Effectiveness, QueryStats};
use pws_geo::{LocationMatcher, LocationOntology};
use pws_index::{SearchEngine, SearchHit};
use pws_profile::{mine_pairs, FeatureExtractor, GeoContext, ResultFeatureInput, UserHistory};
use pws_ranksvm::PairwiseTrainer;
use std::collections::HashMap;

/// Everything one `search` call produced: the page shown to the user plus
/// the intermediate state `observe` needs to learn from the clicks.
#[derive(Debug, Clone)]
pub struct SearchTurn {
    /// The issuing user.
    pub user: UserId,
    /// The query text as received.
    pub query_text: String,
    /// The final, (possibly) personalized page, ranks re-assigned 1-based.
    pub hits: Vec<SearchHit>,
    /// Concept ontology extracted over the *page* snippets (aligned with
    /// `hits`; feeds profile updates and query statistics).
    pub ontology: QueryConceptOntology,
    /// Feature vectors aligned with `hits` (feeds pair mining).
    pub features: Vec<Vec<f64>>,
    /// The content/location blend weight used (location share).
    pub beta: f64,
    /// Whether personalization actually re-ranked (false for baseline mode
    /// and for cold queries the effectiveness gate skipped).
    pub personalized: bool,
}

/// Cached handles into the global [`pws_obs`] registry, resolved once at
/// engine construction so the hot path never touches the registry lock.
struct EngineMetrics {
    retrieval: std::sync::Arc<pws_obs::StageMetrics>,
    concepts: std::sync::Arc<pws_obs::StageMetrics>,
    features: std::sync::Arc<pws_obs::StageMetrics>,
    beta: std::sync::Arc<pws_obs::StageMetrics>,
    rerank: std::sync::Arc<pws_obs::StageMetrics>,
    observe: std::sync::Arc<pws_obs::StageMetrics>,
}

impl EngineMetrics {
    fn resolve() -> Self {
        EngineMetrics {
            retrieval: pws_obs::stage("engine.retrieval"),
            concepts: pws_obs::stage("engine.concepts"),
            features: pws_obs::stage("engine.features"),
            beta: pws_obs::stage("engine.beta"),
            rerank: pws_obs::stage("engine.rerank"),
            observe: pws_obs::stage("engine.observe"),
        }
    }
}

/// The engine: baseline retrieval + per-user personalization state.
///
/// Borrows an immutable baseline [`SearchEngine`] and location ontology;
/// owns all per-user learned state. Every [`search`](Self::search) /
/// [`observe`](Self::observe) stage records wall-clock latency into the
/// process-global [`pws_obs`] registry under `engine.*` stage names.
///
/// ```
/// use pws_core::{EngineConfig, PersonalizedSearchEngine};
/// use pws_click::UserId;
/// use pws_geo::{LocId, LocationOntology};
/// use pws_index::{IndexBuilder, StoredDoc};
///
/// // A two-document index and a one-city world.
/// let mut builder = IndexBuilder::new();
/// builder.add(StoredDoc::new(0, "http://a.test", "Harbor dining",
///     "seafood restaurant by the harbor"));
/// builder.add(StoredDoc::new(1, "http://b.test", "Grill house",
///     "steak restaurant with grilled specials"));
/// let index = builder.build();
/// let mut world = LocationOntology::new();
/// let region = world.add(LocId::WORLD, "westland", vec![]);
/// world.add(region, "alden", vec![]);
///
/// let mut engine = PersonalizedSearchEngine::new(&index, &world, EngineConfig::default());
/// let turn = engine.search(UserId(0), "restaurant");
/// assert_eq!(turn.hits.len(), 2);
/// assert_eq!(turn.hits[0].rank, 1);
/// ```
pub struct PersonalizedSearchEngine<'a> {
    base: &'a SearchEngine,
    world: &'a LocationOntology,
    matcher: LocationMatcher,
    cfg: EngineConfig,
    users: HashMap<UserId, UserState>,
    query_stats: HashMap<String, QueryStats>,
    trainer: PairwiseTrainer,
    geo: Option<(&'a pws_geo::WorldCoords, f64)>,
    metrics: EngineMetrics,
}

impl<'a> PersonalizedSearchEngine<'a> {
    /// Build an engine over an already-built baseline index.
    pub fn new(base: &'a SearchEngine, world: &'a LocationOntology, cfg: EngineConfig) -> Self {
        let matcher = LocationMatcher::build(world);
        let trainer = PairwiseTrainer::new(cfg.train_cfg);
        PersonalizedSearchEngine {
            base,
            world,
            matcher,
            cfg,
            users: HashMap::new(),
            query_stats: HashMap::new(),
            trainer,
            geo: None,
            metrics: EngineMetrics::resolve(),
        }
    }

    /// Enable proximity-smoothed location scoring (the GPS extension):
    /// preference for a city also endorses geographically nearby places,
    /// with the exponential kernel scale `scale_km`.
    pub fn with_geo(mut self, coords: &'a pws_geo::WorldCoords, scale_km: f64) -> Self {
        self.geo = Some((coords, scale_km));
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Borrow a user's state (if the user has been seen).
    pub fn user_state(&self, user: UserId) -> Option<&UserState> {
        self.users.get(&user)
    }

    /// Accumulated statistics for a query string (if seen).
    pub fn query_stats(&self, query_text: &str) -> Option<&QueryStats> {
        self.query_stats.get(&Self::query_key(query_text))
    }

    /// Number of distinct users with state.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    fn query_key(query_text: &str) -> String {
        query_text.trim().to_lowercase()
    }

    /// Execute one personalized search for `user`.
    pub fn search(&mut self, user: UserId, query_text: &str) -> SearchTurn {
        let state = self.users.entry(user).or_default();

        // ── Candidate pool ────────────────────────────────────────────────
        let retrieval_span = self.metrics.retrieval.span();
        let base_hits = self.base.search(query_text, self.cfg.rerank_pool);
        let mut candidates = normalize_pool(&base_hits);

        // Location-aware query augmentation: also retrieve for
        // "query + preferred city" so home-city documents enter the pool
        // even when the baseline ranking buried them. Augmented candidates
        // are re-scored against the *original* query (a doc matching only
        // the city name is topically irrelevant and must not inherit the
        // augmented query's inflated score).
        if self.cfg.query_augmentation && self.cfg.mode.uses_location() {
            if let Some(city) = state.location.preferred_city(self.world) {
                let city_name = self.world.name(city);
                if !Self::query_key(query_text).contains(city_name) {
                    let aug = format!("{query_text} {city_name}");
                    let aug_hits = self.base.search(&aug, self.cfg.rerank_pool);
                    let new_hits: Vec<SearchHit> = aug_hits
                        .into_iter()
                        .filter(|h| !candidates.iter().any(|(c, _)| c.doc == h.doc))
                        .collect();
                    let new_docs: Vec<u32> = new_hits.iter().map(|h| h.doc).collect();
                    let base_scores = self.base.score_docs(query_text, &new_docs);
                    let base_max = base_hits
                        .iter()
                        .map(|h| h.score)
                        .fold(0.0_f64, f64::max)
                        .max(f64::MIN_POSITIVE);
                    let rescored: Vec<(SearchHit, f64)> = new_hits
                        .into_iter()
                        .zip(base_scores)
                        .filter(|(_, s)| *s > 0.0)
                        .map(|(h, s)| (h, s / base_max))
                        .collect();
                    merge_pools(&mut candidates, rescored);
                }
            }
        }
        drop(retrieval_span);

        if self.cfg.mode == PersonalizationMode::Baseline || candidates.is_empty() {
            let page: Vec<SearchHit> = candidates
                .into_iter()
                .take(self.cfg.top_k)
                .enumerate()
                .map(|(i, (mut h, _))| {
                    h.rank = i + 1;
                    h
                })
                .collect();
            return self.finish_turn(user, query_text, page, 0.5, false);
        }

        // ── Features over the pool ────────────────────────────────────────
        let concepts_span = self.metrics.concepts.span();
        let pool_snippets: Vec<String> =
            candidates.iter().map(|(h, _)| h.snippet.clone()).collect();
        let pool_onto = QueryConceptOntology::extract(
            query_text,
            &pool_snippets,
            &self.matcher,
            self.world,
            &self.cfg.concept_cfg,
            &self.cfg.location_cfg,
        );
        drop(concepts_span);
        let features_span = self.metrics.features.span();
        let inputs: Vec<ResultFeatureInput> = candidates
            .iter()
            .enumerate()
            .map(|(i, (h, norm))| ResultFeatureInput {
                doc: h.doc,
                rank: i + 1,
                base_score: *norm,
                url: h.url.clone(),
                title: h.title.clone(),
            })
            .collect();
        let extractor = FeatureExtractor::with_masks(
            self.cfg.mode.uses_content(),
            self.cfg.mode.uses_location(),
        );
        let state = self.users.get(&user).expect("state created above");
        let geo_ctx = self.geo.map(|(coords, scale_km)| GeoContext { coords, scale_km });
        let mut features = extractor.extract_page_geo(
            query_text,
            &inputs,
            &pool_onto,
            &state.content,
            &state.location,
            &state.history,
            geo_ctx.as_ref(),
        );
        drop(features_span);

        // ── Blend ────────────────────────────────────────────────────────
        let beta = self.choose_beta(query_text);
        for f in &mut features {
            f[1] *= 2.0 * (1.0 - beta);
            f[2] *= 2.0 * beta;
        }

        // ── Score & select the page ──────────────────────────────────────
        let rerank_span = self.metrics.rerank.span();
        let order = state.model.rank(&features);
        let page: Vec<SearchHit> = order
            .iter()
            .take(self.cfg.top_k)
            .enumerate()
            .map(|(i, &idx)| {
                let mut h = candidates[idx].0.clone();
                h.rank = i + 1;
                h
            })
            .collect();
        drop(rerank_span);

        self.finish_turn(user, query_text, page, beta, true)
    }

    /// β for this query under the configured strategy and mode.
    fn choose_beta(&self, query_text: &str) -> f64 {
        let _span = self.metrics.beta.span();
        match self.cfg.mode {
            PersonalizationMode::ContentOnly => 0.0,
            PersonalizationMode::LocationOnly => 1.0,
            PersonalizationMode::Baseline => 0.5,
            PersonalizationMode::Combined => match self.cfg.blend {
                BlendStrategy::Fixed(b) => b.clamp(0.0, 1.0),
                BlendStrategy::Adaptive => self
                    .query_stats
                    .get(&Self::query_key(query_text))
                    .map(|s| Effectiveness::from_stats(s, &self.cfg.effectiveness_cfg))
                    .unwrap_or_else(Effectiveness::neutral)
                    .beta(),
            },
        }
    }

    /// Extract the page-level ontology + page-aligned features and assemble
    /// the turn.
    fn finish_turn(
        &mut self,
        user: UserId,
        query_text: &str,
        page: Vec<SearchHit>,
        beta: f64,
        personalized: bool,
    ) -> SearchTurn {
        let concepts_span = self.metrics.concepts.span();
        let page_snippets: Vec<String> = page.iter().map(|h| h.snippet.clone()).collect();
        let ontology = QueryConceptOntology::extract(
            query_text,
            &page_snippets,
            &self.matcher,
            self.world,
            &self.cfg.concept_cfg,
            &self.cfg.location_cfg,
        );
        drop(concepts_span);
        let geo = self.geo;
        let state = self.users.entry(user).or_default();
        let inputs: Vec<ResultFeatureInput> = page
            .iter()
            .map(|h| ResultFeatureInput {
                doc: h.doc,
                rank: h.rank,
                base_score: h.score.max(f64::MIN_POSITIVE),
                url: h.url.clone(),
                title: h.title.clone(),
            })
            .collect();
        let extractor = FeatureExtractor::with_masks(
            self.cfg.mode.uses_content(),
            self.cfg.mode.uses_location(),
        );
        let geo_ctx = geo.map(|(coords, scale_km)| GeoContext { coords, scale_km });
        let features_span = self.metrics.features.span();
        let features = extractor.extract_page_geo(
            query_text,
            &inputs,
            &ontology,
            &state.content,
            &state.location,
            &state.history,
            geo_ctx.as_ref(),
        );
        drop(features_span);
        SearchTurn {
            user,
            query_text: query_text.to_string(),
            hits: page,
            ontology,
            features,
            beta,
            personalized,
        }
    }

    /// Fold the user's clicks on a turn back into the engine.
    ///
    /// `impression.results` must correspond to `turn.hits` (same order) —
    /// the simulator guarantees this by construction.
    pub fn observe(&mut self, turn: &SearchTurn, impression: &Impression) {
        let _span = self.metrics.observe.span();
        // Query statistics always update (they also drive the adaptive β
        // for baseline-mode logging).
        self.query_stats
            .entry(Self::query_key(&turn.query_text))
            .or_default()
            .observe(&turn.ontology, impression);

        let state = self.users.entry(turn.user).or_default();
        state.history.observe(impression);

        if self.cfg.mode == PersonalizationMode::Baseline {
            state.observations += 1;
            return;
        }

        if self.cfg.mode.uses_content() {
            state
                .content
                .observe(&turn.ontology, impression, &self.cfg.content_profile_cfg);
        }
        if self.cfg.mode.uses_location() {
            state.location.observe(
                &turn.ontology,
                impression,
                self.world,
                &self.cfg.location_profile_cfg,
            );
        }

        // Pair mining + periodic re-training.
        if self.cfg.retrain_every > 0 {
            let mut pairs = match &self.cfg.pair_source {
                crate::config::PairSource::Joachims(cfg) => {
                    mine_pairs(impression, &turn.features, cfg)
                }
                crate::config::PairSource::SpyNb(cfg) => {
                    pws_profile::mine_spynb_pairs(impression, &turn.features, cfg)
                }
            };
            state.pairs.append(&mut pairs);
            if state.pairs.len() > self.cfg.max_pairs_per_user {
                let excess = state.pairs.len() - self.cfg.max_pairs_per_user;
                state.pairs.drain(..excess);
            }
            state.observations += 1;
            if state.observations.is_multiple_of(self.cfg.retrain_every) && !state.pairs.is_empty() {
                // Re-train from the prior each round (anchored): the pair
                // window is the full training set, so warm-starting from
                // the drifted model would double-count old pairs.
                let anchor = UserState::prior_weights();
                state.model = pws_ranksvm::LinearRankModel::from_weights(anchor.clone());
                self.trainer.train_anchored(&mut state.model, &anchor, &state.pairs);
            }
        } else {
            state.observations += 1;
        }
    }

    /// Reset one user's learned state (testing / right-to-be-forgotten).
    pub fn forget_user(&mut self, user: UserId) {
        self.users.remove(&user);
    }

    /// Export one user's learned state as JSON — profile portability and
    /// the user-facing "what do you know about me" view.
    pub fn export_user(&self, user: UserId) -> Option<String> {
        self.users.get(&user).map(|s| {
            serde_json::to_string(s).expect("UserState serialization is infallible")
        })
    }

    /// Import a previously exported user state, replacing any existing
    /// state for that user id. Returns `Err` on malformed JSON.
    pub fn import_user(&mut self, user: UserId, json: &str) -> Result<(), serde_json::Error> {
        let state: UserState = serde_json::from_str(json)?;
        self.users.insert(user, state);
        Ok(())
    }

    /// A view of the revisit history for external diagnostics.
    pub fn user_history(&self, user: UserId) -> Option<&UserHistory> {
        self.users.get(&user).map(|s| &s.history)
    }
}

/// Normalize a hit list's scores to [0, 1] by its own max.
fn normalize_pool(hits: &[SearchHit]) -> Vec<(SearchHit, f64)> {
    let max = hits.iter().map(|h| h.score).fold(0.0_f64, f64::max).max(f64::MIN_POSITIVE);
    hits.iter().map(|h| (h.clone(), h.score / max)).collect()
}

/// Merge `extra` into `pool`, deduplicating by doc id (keeping the higher
/// normalized score) and re-sorting by normalized score desc, doc asc.
fn merge_pools(pool: &mut Vec<(SearchHit, f64)>, extra: Vec<(SearchHit, f64)>) {
    for (hit, norm) in extra {
        match pool.iter_mut().find(|(h, _)| h.doc == hit.doc) {
            Some((_, existing)) => {
                if norm > *existing {
                    *existing = norm;
                }
            }
            None => pool.push((hit, norm)),
        }
    }
    pool.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.doc.cmp(&b.0.doc))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult};
    use pws_corpus::query::QueryId;
    use pws_geo::LocId;
    use pws_index::{IndexBuilder, StoredDoc};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o.add(s, "lakemoor", vec![]);
        o
    }

    fn index() -> SearchEngine {
        let mut b = IndexBuilder::new();
        b.add(StoredDoc::new(0, "http://a.test/0", "Seafood guide",
            "seafood restaurant guide with lobster in alden harbor area"));
        b.add(StoredDoc::new(1, "http://b.test/1", "Seafood lakemoor",
            "seafood restaurant in lakemoor with fresh oysters"));
        b.add(StoredDoc::new(2, "http://c.test/2", "Sushi place",
            "sushi restaurant downtown with omakase menu in alden"));
        b.add(StoredDoc::new(3, "http://d.test/3", "Steak house",
            "steak restaurant grill with ribeye specials"));
        b.build()
    }

    fn impression_from(turn: &SearchTurn, clicked_ranks: &[usize]) -> Impression {
        Impression {
            user: turn.user,
            query: QueryId(0),
            query_text: turn.query_text.clone(),
            results: turn
                .hits
                .iter()
                .map(|h| ShownResult {
                    doc: h.doc,
                    rank: h.rank,
                    url: h.url.clone(),
                    title: h.title.clone(),
                    snippet: h.snippet.clone(),
                })
                .collect(),
            clicks: clicked_ranks
                .iter()
                .filter_map(|&r| {
                    turn.hits
                        .iter()
                        .find(|h| h.rank == r)
                        .map(|h| Click { doc: h.doc, rank: r, dwell: 600 })
                })
                .collect(),
        }
    }

    #[test]
    fn baseline_mode_returns_base_order() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::Baseline),
        );
        let turn = e.search(UserId(0), "seafood restaurant");
        let base = idx.search("seafood restaurant", 10);
        let turn_docs: Vec<u32> = turn.hits.iter().map(|h| h.doc).collect();
        let base_docs: Vec<u32> = base.iter().map(|h| h.doc).collect();
        assert_eq!(turn_docs, base_docs);
        assert!(!turn.personalized);
    }

    #[test]
    fn empty_query_is_safe() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "zzzz unknown");
        assert!(turn.hits.is_empty());
        assert!(turn.features.is_empty());
        // Observing an empty impression must not panic.
        let imp = impression_from(&turn, &[]);
        e.observe(&turn, &imp);
    }

    #[test]
    fn clicks_on_a_city_build_location_preference() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let user = UserId(7);
        // Repeatedly click the lakemoor result for "seafood restaurant".
        for _ in 0..6 {
            let turn = e.search(user, "seafood restaurant");
            let lakemoor_rank = turn
                .hits
                .iter()
                .find(|h| h.doc == 1)
                .map(|h| h.rank)
                .expect("lakemoor doc in page");
            let imp = impression_from(&turn, &[lakemoor_rank]);
            e.observe(&turn, &imp);
        }
        let state = e.user_state(user).unwrap();
        let lakemoor = LocId(5);
        assert!(state.location.weight(lakemoor) > 0.0);
        assert_eq!(state.location.preferred_city(&w), Some(lakemoor));
        // After learning, the lakemoor doc should be promoted to rank 1.
        let turn = e.search(user, "seafood restaurant");
        assert_eq!(turn.hits[0].doc, 1, "personalization should surface lakemoor doc");
        assert!(turn.personalized);
    }

    #[test]
    fn content_clicks_build_content_preference() {
        let idx = index();
        let w = world();
        // Loose extraction thresholds: with only four docs in the fixture,
        // "sushi" appears in a single snippet and the default
        // min_snippet_freq=2 would drop it.
        let mut e = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig {
                concept_cfg: pws_concepts::ConceptConfig {
                    min_support: 0.0,
                    min_snippet_freq: 1,
                    ..Default::default()
                },
                ..EngineConfig::for_mode(PersonalizationMode::ContentOnly)
            },
        );
        let user = UserId(3);
        for _ in 0..6 {
            let turn = e.search(user, "restaurant");
            let sushi_rank = turn.hits.iter().find(|h| h.doc == 2).map(|h| h.rank);
            let Some(r) = sushi_rank else { continue };
            let imp = impression_from(&turn, &[r]);
            e.observe(&turn, &imp);
        }
        let state = e.user_state(user).unwrap();
        assert!(state.content.weight("sushi") > 0.0);
        let turn = e.search(user, "restaurant");
        assert_eq!(turn.hits[0].doc, 2, "sushi doc should be promoted");
    }

    #[test]
    fn modes_set_beta_extremes() {
        let idx = index();
        let w = world();
        let mut c = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::ContentOnly),
        );
        assert_eq!(c.search(UserId(0), "restaurant").beta, 0.0);
        let mut l = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig::for_mode(PersonalizationMode::LocationOnly),
        );
        assert_eq!(l.search(UserId(0), "restaurant").beta, 1.0);
        let mut f = PersonalizedSearchEngine::new(
            &idx,
            &w,
            EngineConfig {
                blend: BlendStrategy::Fixed(0.3),
                ..EngineConfig::default()
            },
        );
        assert!((f.search(UserId(0), "restaurant").beta - 0.3).abs() < 1e-12);
    }

    #[test]
    fn adaptive_beta_starts_neutral_then_tracks_stats() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "restaurant");
        assert_eq!(turn.beta, 0.5, "no stats yet → neutral");
        // Feed diverse location clicks from two users.
        for (u, doc) in [(0u32, 0u32), (1, 1), (0, 0), (1, 1), (0, 0), (1, 1)] {
            let turn = e.search(UserId(u), "restaurant");
            if let Some(h) = turn.hits.iter().find(|h| h.doc == doc) {
                let imp = impression_from(&turn, &[h.rank]);
                e.observe(&turn, &imp);
            }
        }
        assert!(e.query_stats("restaurant").is_some());
        let beta = e.search(UserId(9), "restaurant").beta;
        assert!(beta > 0.0 && beta < 1.0);
    }

    #[test]
    fn ranks_are_reassigned_after_rerank() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "restaurant");
        for (i, h) in turn.hits.iter().enumerate() {
            assert_eq!(h.rank, i + 1);
        }
        assert_eq!(turn.features.len(), turn.hits.len());
        assert_eq!(turn.ontology.content_by_snippet.len(), turn.hits.len());
    }

    #[test]
    fn retraining_changes_model_weights() {
        let idx = index();
        let w = world();
        let cfg = EngineConfig { retrain_every: 2, ..EngineConfig::default() };
        let mut e = PersonalizedSearchEngine::new(&idx, &w, cfg);
        let user = UserId(1);
        let prior = UserState::new().model.weights.clone();
        for _ in 0..4 {
            let turn = e.search(user, "restaurant");
            // Click the last result to generate skip-above pairs.
            let last = turn.hits.last().map(|h| h.rank);
            if let Some(r) = last {
                let imp = impression_from(&turn, &[r]);
                e.observe(&turn, &imp);
            }
        }
        let state = e.user_state(user).unwrap();
        assert!(!state.pairs.is_empty());
        assert_ne!(state.model.weights, prior, "model should have been retrained");
    }

    #[test]
    fn forget_user_clears_state() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let turn = e.search(UserId(0), "restaurant");
        let imp = impression_from(&turn, &[1]);
        e.observe(&turn, &imp);
        assert!(e.user_state(UserId(0)).is_some());
        e.forget_user(UserId(0));
        assert!(e.user_state(UserId(0)).is_none());
    }

    #[test]
    fn user_state_export_import_round_trips() {
        let idx = index();
        let w = world();
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        let user = UserId(4);
        for _ in 0..3 {
            let turn = e.search(user, "seafood restaurant");
            let imp = impression_from(&turn, &[1]);
            e.observe(&turn, &imp);
        }
        let json = e.export_user(user).expect("state exists");
        let before = e.user_state(user).unwrap().model.weights.clone();

        // Import into a fresh engine: same learned state, same ranking.
        let mut e2 = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default());
        e2.import_user(user, &json).expect("import");
        let after = e2.user_state(user).unwrap();
        assert_eq!(after.model.weights, before);
        assert_eq!(after.observations, 3);
        let page1: Vec<u32> = e.search(user, "restaurant").hits.iter().map(|h| h.doc).collect();
        let page2: Vec<u32> = e2.search(user, "restaurant").hits.iter().map(|h| h.doc).collect();
        assert_eq!(page1, page2);

        // Malformed JSON is rejected.
        assert!(e2.import_user(user, "{not json").is_err());
        // Unknown users export None.
        assert!(e.export_user(UserId(999)).is_none());
    }

    #[test]
    fn geo_smoothing_scores_nearby_cities() {
        let idx = index();
        let w = world();
        let coords = pws_geo::WorldCoords::generate(&w, 5);
        let mut e = PersonalizedSearchEngine::new(&idx, &w, EngineConfig::default())
            .with_geo(&coords, 500.0);
        let user = UserId(2);
        // Train on lakemoor clicks as in the non-geo test.
        for _ in 0..4 {
            let turn = e.search(user, "seafood restaurant");
            if let Some(h) = turn.hits.iter().find(|h| h.doc == 1) {
                let imp = impression_from(&turn, &[h.rank]);
                e.observe(&turn, &imp);
            }
        }
        // The engine still works end-to-end and ranks deterministically.
        let turn = e.search(user, "seafood restaurant");
        assert!(!turn.hits.is_empty());
        assert_eq!(turn.features.len(), turn.hits.len());
        // Geo scoring endorses *all* locations somewhat (exp kernel > 0),
        // so the alden doc's location feature is nonzero too once the
        // profile is warm — unlike the exact-match scorer.
        let state = e.user_state(user).unwrap();
        assert!(!state.location.is_empty());
    }

    #[test]
    fn merge_pools_dedups_and_sorts() {
        let h = |doc: u32, score: f64| SearchHit {
            doc,
            score,
            rank: 1,
            url: format!("u{doc}"),
            title: "t".into(),
            snippet: "s".into(),
        };
        let mut pool = vec![(h(0, 1.0), 1.0), (h(1, 0.5), 0.5)];
        merge_pools(&mut pool, vec![(h(1, 0.9), 0.9), (h(2, 0.7), 0.7)]);
        let docs: Vec<u32> = pool.iter().map(|(x, _)| x.doc).collect();
        assert_eq!(docs, vec![0, 1, 2]);
        assert_eq!(pool[1].1, 0.9, "kept the higher normalized score");
    }
}
