//! Engine configuration.

use pws_concepts::{ConceptConfig, LocationConceptConfig};
use pws_entropy::EffectivenessConfig;
use pws_profile::{ContentProfileConfig, LocationProfileConfig, PairMiningConfig, SpyNbConfig};
use pws_ranksvm::TrainConfig;

/// Which preference-pair mining algorithm feeds the RankSVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PairSource {
    /// Joachims click ≻ skip-above (+ next-unclicked) pairs.
    Joachims(PairMiningConfig),
    /// Spy Naive Bayes reliable-negative mining (the HKUST line's method).
    SpyNb(SpyNbConfig),
}

/// Which personalization dimensions are active — the method variants
/// compared throughout the evaluation (T3, F1, F2, F5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersonalizationMode {
    /// No personalization: return the baseline ranking unchanged.
    Baseline,
    /// Content preferences only.
    ContentOnly,
    /// Location preferences only.
    LocationOnly,
    /// Both dimensions, blended (the paper's full method).
    Combined,
}

impl PersonalizationMode {
    /// Does this mode use the content dimension?
    pub fn uses_content(self) -> bool {
        matches!(self, PersonalizationMode::ContentOnly | PersonalizationMode::Combined)
    }

    /// Does this mode use the location dimension?
    pub fn uses_location(self) -> bool {
        matches!(self, PersonalizationMode::LocationOnly | PersonalizationMode::Combined)
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            PersonalizationMode::Baseline => "baseline",
            PersonalizationMode::ContentOnly => "content",
            PersonalizationMode::LocationOnly => "location",
            PersonalizationMode::Combined => "combined",
        }
    }
}

/// How the content/location blend weight β is chosen (F5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlendStrategy {
    /// β estimated per query from click-entropy effectiveness.
    Adaptive,
    /// A fixed β for every query (0 = content only, 1 = location only).
    Fixed(f64),
}

/// Full engine configuration. `Default` reproduces the paper-default setup
/// used by T3/F1/F2.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Results per page shown to the user.
    pub top_k: usize,
    /// Baseline pool size fetched for re-ranking (≥ `top_k`).
    pub rerank_pool: usize,
    /// Run a second, city-augmented retrieval and merge candidate pools
    /// when the user's location profile has a preferred city.
    pub query_augmentation: bool,
    /// Personalization variant.
    pub mode: PersonalizationMode,
    /// Blend strategy for the combined mode.
    pub blend: BlendStrategy,
    /// Content-concept extraction parameters.
    pub concept_cfg: ConceptConfig,
    /// Location-concept extraction parameters.
    pub location_cfg: LocationConceptConfig,
    /// Content-profile update parameters.
    pub content_profile_cfg: ContentProfileConfig,
    /// Location-profile update parameters.
    pub location_profile_cfg: LocationProfileConfig,
    /// Effectiveness estimation parameters.
    pub effectiveness_cfg: EffectivenessConfig,
    /// Preference-pair mining algorithm and its parameters.
    pub pair_source: PairSource,
    /// RankSVM training parameters.
    pub train_cfg: TrainConfig,
    /// Re-train the user's RankSVM every this many observations
    /// (0 disables training; the prior weights then rank throughout).
    pub retrain_every: u64,
    /// Cap on retained preference pairs per user (sliding window).
    pub max_pairs_per_user: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            top_k: 10,
            rerank_pool: 30,
            query_augmentation: true,
            mode: PersonalizationMode::Combined,
            blend: BlendStrategy::Adaptive,
            concept_cfg: ConceptConfig::default(),
            location_cfg: LocationConceptConfig::default(),
            content_profile_cfg: ContentProfileConfig::default(),
            location_profile_cfg: LocationProfileConfig::default(),
            effectiveness_cfg: EffectivenessConfig::default(),
            pair_source: PairSource::Joachims(PairMiningConfig::default()),
            // Freeze the rank-derived features (base score, rank prior):
            // click-mined pairs are position-biased against them, so their
            // weights stay at the trusted prior (see TrainConfig docs).
            // λ anchors the free weights to the prior (train_anchored);
            // position-biased pair noise then cannot drag the model far.
            train_cfg: TrainConfig {
                frozen_mask: 0b1001,
                lambda: 0.15,
                ..TrainConfig::default()
            },
            retrain_every: 5,
            max_pairs_per_user: 2000,
        }
    }
}

impl EngineConfig {
    /// The configuration for a given evaluation variant.
    pub fn for_mode(mode: PersonalizationMode) -> Self {
        EngineConfig { mode, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_dimension_flags() {
        assert!(!PersonalizationMode::Baseline.uses_content());
        assert!(!PersonalizationMode::Baseline.uses_location());
        assert!(PersonalizationMode::ContentOnly.uses_content());
        assert!(!PersonalizationMode::ContentOnly.uses_location());
        assert!(!PersonalizationMode::LocationOnly.uses_content());
        assert!(PersonalizationMode::LocationOnly.uses_location());
        assert!(PersonalizationMode::Combined.uses_content());
        assert!(PersonalizationMode::Combined.uses_location());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            PersonalizationMode::Baseline.label(),
            PersonalizationMode::ContentOnly.label(),
            PersonalizationMode::LocationOnly.label(),
            PersonalizationMode::Combined.label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn default_config_is_sane() {
        let c = EngineConfig::default();
        assert!(c.rerank_pool >= c.top_k);
        assert!(c.retrain_every > 0);
        assert_eq!(c.mode, PersonalizationMode::Combined);
    }
}
