//! Prometheus text-exposition rendering of the metrics registry.
//!
//! [`prometheus_text`] snapshots every registered stage and renders it
//! in the [Prometheus text exposition format] (version 0.0.4) with no
//! external dependencies, suitable for writing to a `.prom` file or
//! serving from a scrape endpoint:
//!
//! * `pws_stage_invocations_total{stage="…"}` — counter of span /
//!   record / `incr` observations,
//! * `pws_stage_nanos_total{stage="…"}` — counter of recorded
//!   nanoseconds,
//! * `pws_stage_latency_nanos{stage="…"}` — histogram with cumulative
//!   `le` buckets at the log₂ bucket upper bounds (empty trailing
//!   ranges are skipped; `+Inf`, `_sum`, `_count` always emitted),
//! * `pws_stage_p50_nanos` / `p95` / `p99` — gauge convenience
//!   percentiles (bucket midpoints, see the crate docs for accuracy),
//! * `pws_serve_shard_requests_total` / `pws_serve_shard_p99_nanos` —
//!   the per-shard serving family, re-labelled `{shard="…",op="…"}`
//!   from the `serve.shard{i}.{op}` stage-name convention so dashboards
//!   can aggregate across shards without regex-parsing stage names.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::{bucket_upper, MetricsSnapshot, StageSnapshot, BUCKETS};

/// Render the whole process-global registry in the Prometheus text
/// exposition format.
pub fn prometheus_text() -> String {
    crate::snapshot().to_prometheus()
}

impl MetricsSnapshot {
    /// Render this snapshot in the Prometheus text exposition format
    /// (see the [module docs](crate::prometheus) for the metric
    /// families emitted).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        out.push_str(
            "# HELP pws_stage_invocations_total Observations recorded per pipeline stage.\n",
        );
        out.push_str("# TYPE pws_stage_invocations_total counter\n");
        for s in &self.stages {
            out.push_str(&format!(
                "pws_stage_invocations_total{{stage=\"{}\"}} {}\n",
                escape_label(&s.name),
                s.count
            ));
        }

        out.push_str(
            "# HELP pws_stage_nanos_total Total recorded nanoseconds per pipeline stage.\n",
        );
        out.push_str("# TYPE pws_stage_nanos_total counter\n");
        for s in &self.stages {
            out.push_str(&format!(
                "pws_stage_nanos_total{{stage=\"{}\"}} {}\n",
                escape_label(&s.name),
                s.total_nanos
            ));
        }

        out.push_str(
            "# HELP pws_stage_latency_nanos Per-stage latency distribution (log2 buckets).\n",
        );
        out.push_str("# TYPE pws_stage_latency_nanos histogram\n");
        for s in &self.stages {
            render_histogram(&mut out, s);
        }

        for (metric, pick) in [
            ("pws_stage_p50_nanos", (|s: &StageSnapshot| s.p50_nanos) as fn(&StageSnapshot) -> u64),
            ("pws_stage_p95_nanos", |s: &StageSnapshot| s.p95_nanos),
            ("pws_stage_p99_nanos", |s: &StageSnapshot| s.p99_nanos),
        ] {
            out.push_str(&format!(
                "# HELP {metric} Estimated latency percentile per stage (bucket midpoint).\n"
            ));
            out.push_str(&format!("# TYPE {metric} gauge\n"));
            for s in &self.stages {
                out.push_str(&format!(
                    "{metric}{{stage=\"{}\"}} {}\n",
                    escape_label(&s.name),
                    pick(s)
                ));
            }
        }

        let sharded: Vec<(usize, &str, &StageSnapshot)> = self
            .stages
            .iter()
            .filter_map(|s| parse_shard_stage(&s.name).map(|(i, op)| (i, op, s)))
            .collect();
        if !sharded.is_empty() {
            out.push_str(
                "# HELP pws_serve_shard_requests_total Requests handled per serving shard and operation.\n",
            );
            out.push_str("# TYPE pws_serve_shard_requests_total counter\n");
            for (shard, op, s) in &sharded {
                out.push_str(&format!(
                    "pws_serve_shard_requests_total{{shard=\"{shard}\",op=\"{}\"}} {}\n",
                    escape_label(op),
                    s.count
                ));
            }
            out.push_str(
                "# HELP pws_serve_shard_p99_nanos Estimated p99 latency per serving shard and operation.\n",
            );
            out.push_str("# TYPE pws_serve_shard_p99_nanos gauge\n");
            for (shard, op, s) in &sharded {
                out.push_str(&format!(
                    "pws_serve_shard_p99_nanos{{shard=\"{shard}\",op=\"{}\"}} {}\n",
                    escape_label(op),
                    s.p99_nanos
                ));
            }
        }

        out
    }
}

/// One stage's cumulative-bucket histogram lines. Only buckets up to
/// the last non-empty one are emitted (plus the mandatory `+Inf`);
/// cumulative counts stay exact because skipping empty *trailing*
/// buckets drops no observations.
fn render_histogram(out: &mut String, s: &StageSnapshot) {
    let stage = escape_label(&s.name);
    let histogram_count: u64 = s.buckets.iter().sum();
    let last_nonempty = s.buckets.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last_nonempty {
        for (i, &c) in s.buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            if c == 0 {
                continue;
            }
            // The top bucket is unbounded: it only appears as +Inf.
            if i >= BUCKETS - 1 {
                break;
            }
            out.push_str(&format!(
                "pws_stage_latency_nanos_bucket{{stage=\"{stage}\",le=\"{}\"}} {cumulative}\n",
                bucket_upper(i)
            ));
        }
    }
    out.push_str(&format!(
        "pws_stage_latency_nanos_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {histogram_count}\n"
    ));
    out.push_str(&format!("pws_stage_latency_nanos_sum{{stage=\"{stage}\"}} {}\n", s.total_nanos));
    out.push_str(&format!(
        "pws_stage_latency_nanos_count{{stage=\"{stage}\"}} {histogram_count}\n"
    ));
}

/// Split a `serve.shard{i}.{op}` stage name into `(i, op)`.
fn parse_shard_stage(name: &str) -> Option<(usize, &str)> {
    let rest = name.strip_prefix("serve.shard")?;
    let dot = rest.find('.')?;
    let shard: usize = rest[..dot].parse().ok()?;
    let op = &rest[dot + 1..];
    if op.is_empty() {
        None
    } else {
        Some((shard, op))
    }
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StageMetrics;

    /// A parsed sample line: metric name, label pairs, value.
    type Sample = (String, Vec<(String, String)>, f64);

    /// Minimal hand-rolled validator for the text exposition format:
    /// every line is a comment (`# HELP` / `# TYPE` with a known kind)
    /// or a sample `name{labels} value` / `name value` whose metric
    /// name is legal, whose labels are `key="escaped"` pairs, and whose
    /// value parses as a float (or `+Inf`). `TYPE` must precede the
    /// family's samples. Returns the parsed samples.
    fn validate(text: &str) -> Vec<Sample> {
        let mut typed: Vec<String> = Vec::new();
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let err = |msg: &str| -> ! { panic!("line {}: {msg}: {line:?}", lineno + 1) };
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let mut parts = rest.splitn(3, ' ');
                let keyword = parts.next().unwrap_or("");
                let name = parts.next().unwrap_or("");
                let tail = parts.next().unwrap_or("");
                match keyword {
                    "HELP" => {
                        assert!(is_metric_name(name), "bad HELP name {name:?}");
                        assert!(!tail.is_empty(), "HELP without text");
                    }
                    "TYPE" => {
                        assert!(is_metric_name(name), "bad TYPE name {name:?}");
                        assert!(
                            ["counter", "gauge", "histogram", "summary", "untyped"].contains(&tail),
                            "bad TYPE kind {tail:?}"
                        );
                        typed.push(name.to_string());
                    }
                    _ => err("unknown comment keyword"),
                }
                continue;
            }
            // Sample line: name[{labels}] value
            let (name_labels, value) = line.rsplit_once(' ').unwrap_or_else(|| err("no value"));
            let v: f64 = match value {
                "+Inf" => f64::INFINITY,
                other => other.parse().unwrap_or_else(|_| err("bad value")),
            };
            let (name, labels) = match name_labels.split_once('{') {
                None => (name_labels.to_string(), Vec::new()),
                Some((n, rest)) => {
                    let inner = rest.strip_suffix('}').unwrap_or_else(|| err("unclosed labels"));
                    let mut pairs = Vec::new();
                    for pair in split_label_pairs(inner) {
                        let (k, qv) = pair.split_once('=').unwrap_or_else(|| err("label no ="));
                        let qv = qv
                            .strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .unwrap_or_else(|| err("label not quoted"));
                        pairs.push((k.to_string(), qv.to_string()));
                    }
                    (n.to_string(), pairs)
                }
            };
            assert!(is_metric_name(&name), "bad metric name {name:?}");
            // The family (name minus histogram suffixes) must have a TYPE.
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(&name);
            assert!(
                typed.iter().any(|t| t == family || t == &name),
                "sample {name:?} before its TYPE"
            );
            samples.push((name, labels, v));
        }
        samples
    }

    fn is_metric_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Split `k1="v1",k2="v2"` on commas outside quotes (label values
    /// may contain escaped quotes).
    fn split_label_pairs(s: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let (mut start, mut in_quotes, mut escaped) = (0usize, false, false);
        for (i, c) in s.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_quotes => escaped = true,
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => {
                    out.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if start < s.len() {
            out.push(&s[start..]);
        }
        out
    }

    fn snapshot_of(stages: Vec<StageSnapshot>) -> MetricsSnapshot {
        MetricsSnapshot { stages }
    }

    #[test]
    fn exposition_is_valid_and_complete() {
        let engine = StageMetrics::new("engine.rerank");
        for v in [800u64, 1_200, 1_000_000] {
            engine.record_nanos(v);
        }
        let shard0 = StageMetrics::new("serve.shard0.search");
        shard0.record_nanos(5_000);
        shard0.record_nanos(7_000);
        let shard1 = StageMetrics::new("serve.shard1.observe");
        shard1.record_nanos(300);
        let snap = snapshot_of(vec![engine.snapshot(), shard0.snapshot(), shard1.snapshot()]);
        let text = snap.to_prometheus();
        let samples = validate(&text);

        let find = |name: &str, labels: &[(&str, &str)]| -> f64 {
            samples
                .iter()
                .find(|(n, ls, _)| {
                    n == name
                        && labels.iter().all(|(k, v)| ls.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("missing sample {name} {labels:?} in:\n{text}"))
                .2
        };

        assert_eq!(find("pws_stage_invocations_total", &[("stage", "engine.rerank")]), 3.0);
        assert_eq!(find("pws_stage_nanos_total", &[("stage", "engine.rerank")]), 1_002_000.0);
        // Histogram: 800 → bucket le=1023, 1200 → le=2047, 1e6 → le=1048575.
        assert_eq!(
            find("pws_stage_latency_nanos_bucket", &[("stage", "engine.rerank"), ("le", "1023")]),
            1.0
        );
        assert_eq!(
            find("pws_stage_latency_nanos_bucket", &[("stage", "engine.rerank"), ("le", "2047")]),
            2.0
        );
        assert_eq!(
            find("pws_stage_latency_nanos_bucket", &[("stage", "engine.rerank"), ("le", "+Inf")]),
            3.0
        );
        assert_eq!(find("pws_stage_latency_nanos_count", &[("stage", "engine.rerank")]), 3.0);
        assert_eq!(find("pws_stage_latency_nanos_sum", &[("stage", "engine.rerank")]), 1_002_000.0);
        assert!(find("pws_stage_p99_nanos", &[("stage", "engine.rerank")]) > 0.0);

        // Per-shard serve family, re-labelled from the stage names.
        assert_eq!(
            find("pws_serve_shard_requests_total", &[("shard", "0"), ("op", "search")]),
            2.0
        );
        assert_eq!(
            find("pws_serve_shard_requests_total", &[("shard", "1"), ("op", "observe")]),
            1.0
        );
        assert!(find("pws_serve_shard_p99_nanos", &[("shard", "0"), ("op", "search")]) > 0.0);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_matches_count() {
        let m = StageMetrics::new("test.cumulative");
        let mut seed = 7u64;
        for _ in 0..200 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            m.record_nanos(seed % 1_000_000);
        }
        let text = snapshot_of(vec![m.snapshot()]).to_prometheus();
        let samples = validate(&text);
        let mut last = 0.0;
        let mut inf = None;
        for (name, labels, v) in &samples {
            if name != "pws_stage_latency_nanos_bucket" {
                continue;
            }
            assert!(*v >= last, "cumulative buckets must be non-decreasing");
            last = *v;
            if labels.iter().any(|(k, val)| k == "le" && val == "+Inf") {
                inf = Some(*v);
            }
        }
        assert_eq!(inf, Some(200.0), "+Inf bucket equals total observations");
        let count = samples
            .iter()
            .find(|(n, _, _)| n == "pws_stage_latency_nanos_count")
            .expect("histogram _count")
            .2;
        assert_eq!(count, 200.0);
    }

    #[test]
    fn label_values_are_escaped() {
        let m = StageMetrics::new("weird\"stage\\name");
        m.record_nanos(1);
        let text = snapshot_of(vec![m.snapshot()]).to_prometheus();
        validate(&text);
        assert!(text.contains("stage=\"weird\\\"stage\\\\name\""));
    }

    #[test]
    fn shard_stage_name_parsing() {
        assert_eq!(parse_shard_stage("serve.shard0.search"), Some((0, "search")));
        assert_eq!(parse_shard_stage("serve.shard12.queue"), Some((12, "queue")));
        assert_eq!(parse_shard_stage("serve.shard12."), None);
        assert_eq!(parse_shard_stage("serve.shardx.search"), None);
        assert_eq!(parse_shard_stage("engine.rerank"), None);
        assert_eq!(parse_shard_stage("serve.request"), None);
    }

    #[test]
    fn global_render_includes_registered_stage() {
        crate::stage("test.prom.global").record_nanos(123);
        let text = prometheus_text();
        validate(&text);
        assert!(text.contains("stage=\"test.prom.global\""));
    }

    #[test]
    fn empty_stage_renders_inf_bucket_only() {
        let text =
            snapshot_of(vec![StageMetrics::new("test.prom.empty").snapshot()]).to_prometheus();
        validate(&text);
        assert!(text
            .contains("pws_stage_latency_nanos_bucket{stage=\"test.prom.empty\",le=\"+Inf\"} 0"));
    }
}
