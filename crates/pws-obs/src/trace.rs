//! Per-query decision traces.
//!
//! The aggregate [`crate::MetricsSnapshot`] answers "how slow is stage
//! X overall"; a [`QueryTrace`] answers the scrutability questions a
//! re-ranker owes its operators: *why did document D rank #1 for this
//! query* and *where did this query's latency go*. The engine fills
//! one trace per traced search turn with
//!
//! * the stage-by-stage nanosecond breakdown,
//! * the content/location concepts the ranker saw (with support),
//! * the chosen β — value, provenance (fixed / adaptive / mode-pinned)
//!   and, when adaptive, the entropy-derived effectiveness inputs,
//! * every pool candidate's feature vector and base-rank → final-rank
//!   movement,
//! * the shard index and queue depth at admission (serving layer).
//!
//! The types here are plain data with no behavior beyond rendering:
//! tracing must never perturb ranking, so the engine only *copies*
//! values it computed anyway. Collection policy (slow-query ring,
//! sampling) lives with the serving layer in `pws-serve`.

/// How the blend weight β was determined for a traced turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BetaProvenance {
    /// Pinned by the personalization mode (content-only → 0, location-
    /// only → 1, baseline → 0.5); click statistics play no role.
    Mode,
    /// A configured fixed blend (`BlendStrategy::Fixed`).
    Fixed,
    /// Adaptive blend, but no click statistics existed yet for this
    /// query — the neutral prior was used.
    AdaptiveNeutral,
    /// Adaptive blend computed from accumulated click statistics (the
    /// entropy inputs are recorded alongside).
    Adaptive,
}

impl BetaProvenance {
    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            BetaProvenance::Mode => "mode-pinned",
            BetaProvenance::Fixed => "fixed",
            BetaProvenance::AdaptiveNeutral => "adaptive (neutral prior, no stats)",
            BetaProvenance::Adaptive => "adaptive (from click statistics)",
        }
    }
}

/// The β decision of one traced turn: the value, where it came from,
/// and — for the adaptive path — the entropy-derived inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct BetaTrace {
    /// The blend weight the turn ranked with (location share).
    pub value: f64,
    /// How the value was determined.
    pub provenance: BetaProvenance,
    /// Content-personalization effectiveness (normalized entropy ×
    /// evidence shrinkage); only for the adaptive provenances.
    pub content_effectiveness: Option<f64>,
    /// Location-personalization effectiveness; only for adaptive.
    pub location_effectiveness: Option<f64>,
    /// Accumulated clicks behind the statistics ([`BetaProvenance::Adaptive`] only).
    pub clicks: Option<u64>,
    /// Accumulated impressions behind the statistics (adaptive only).
    pub impressions: Option<u64>,
}

impl BetaTrace {
    /// A β pinned by mode or fixed configuration (no entropy inputs).
    pub fn pinned(value: f64, provenance: BetaProvenance) -> Self {
        BetaTrace {
            value,
            provenance,
            content_effectiveness: None,
            location_effectiveness: None,
            clicks: None,
            impressions: None,
        }
    }
}

/// One pool candidate's journey through a traced turn.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTrace {
    /// Document id.
    pub doc: u32,
    /// Result title (for human-readable rendering).
    pub title: String,
    /// 1-based rank in the candidate pool ordered by (normalized) base
    /// retrieval score — where the baseline would have put it.
    pub base_rank: usize,
    /// 1-based rank after personalized re-ranking over the full pool.
    pub final_rank: usize,
    /// Whether the result made the returned page (`final_rank ≤ top_k`).
    pub on_page: bool,
    /// Pool-normalized base retrieval score (feature 0's value).
    pub base_score: f64,
    /// The feature vector the ranking model scored, β-blend applied —
    /// exactly the numbers that decided `final_rank`.
    pub features: Vec<f64>,
}

impl ResultTrace {
    /// Positions moved by personalization: positive = promoted
    /// (base 5 → final 2 is +3), negative = demoted.
    pub fn rank_delta(&self) -> i64 {
        self.base_rank as i64 - self.final_rank as i64
    }
}

/// A concept (content term or location name) with its support value.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptTrace {
    /// The concept's surface form (term or location name).
    pub name: String,
    /// Support in the result snippets, as the extractor computed it.
    pub support: f64,
}

/// One stage's contribution to a traced turn's latency.
#[derive(Debug, Clone, PartialEq)]
pub struct StageNanos {
    /// Stage name, matching the registry name in the stage-name table
    /// (docs/ARCHITECTURE.md).
    pub stage: &'static str,
    /// Elapsed wall-clock nanoseconds of this stage in this turn.
    pub nanos: u64,
}

/// Everything one traced search turn decided, and why.
///
/// Filled by `EngineCore::search_user_traced`; the serving layer adds
/// [`shard`](Self::shard), [`queue_depth`](Self::queue_depth) and
/// [`total_nanos`](Self::total_nanos) at admission. Plain data —
/// cloneable, renderable, JSON-serializable without external crates.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The issuing user's id.
    pub user: u32,
    /// The query text as received.
    pub query_text: String,
    /// Per-stage nanosecond breakdown, in execution order.
    pub stages: Vec<StageNanos>,
    /// The β decision.
    pub beta: BetaTrace,
    /// Content concepts extracted over the candidate snippets.
    pub content_concepts: Vec<ConceptTrace>,
    /// Location concepts extracted over the candidate snippets.
    pub location_concepts: Vec<ConceptTrace>,
    /// Human-readable names for the feature vector dimensions.
    pub feature_names: Vec<&'static str>,
    /// Every pool candidate, in final-rank order.
    pub results: Vec<ResultTrace>,
    /// Whether personalization actually re-ranked this turn.
    pub personalized: bool,
    /// Why the turn was served from the degraded (non-personalized)
    /// path, as a stable reason label (`None` for healthy turns). The
    /// serving layer stamps it; the label set is `pws-serve`'s
    /// `DegradeReason` and the matching `serve.degraded.{reason}`
    /// counter names.
    pub degraded: Option<&'static str>,
    /// Whether base retrieval was served from the shared retrieval cache
    /// (`None` when no cache is configured). Personalization always runs
    /// on top — a cache hit only skips re-scoring the index.
    pub cache_hit: Option<bool>,
    /// Serving shard that handled the request (serving layer only).
    pub shard: Option<usize>,
    /// In-flight request depth on that shard at admission.
    pub queue_depth: Option<u64>,
    /// End-to-end request nanoseconds as the serving layer measured it
    /// (0 until the serving layer stamps it).
    pub total_nanos: u64,
}

impl QueryTrace {
    /// An empty trace for a turn about to execute.
    pub fn new(user: u32, query_text: &str) -> Self {
        QueryTrace {
            user,
            query_text: query_text.to_string(),
            stages: Vec::new(),
            beta: BetaTrace::pinned(0.5, BetaProvenance::Mode),
            content_concepts: Vec::new(),
            location_concepts: Vec::new(),
            feature_names: Vec::new(),
            results: Vec::new(),
            personalized: false,
            degraded: None,
            cache_hit: None,
            shard: None,
            queue_depth: None,
            total_nanos: 0,
        }
    }

    /// Append one stage's elapsed time.
    pub fn stage(&mut self, stage: &'static str, nanos: u64) {
        self.stages.push(StageNanos { stage, nanos });
    }

    /// Sum of the recorded stage times (the engine-side latency; the
    /// serving layer's [`total_nanos`](Self::total_nanos) adds queueing
    /// and locking on top).
    pub fn stage_nanos_total(&self) -> u64 {
        self.stages.iter().map(|s| s.nanos).sum()
    }

    /// Pretty-print the full decision record (the `pws-trace` CLI's
    /// output format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("query trace: {:?} (user {})\n", self.query_text, self.user));
        if let Some(shard) = self.shard {
            out.push_str(&format!(
                "  admission : shard {shard}, queue depth {}\n",
                self.queue_depth.unwrap_or(0)
            ));
        }
        out.push_str(&format!(
            "  latency   : {} total, {} in engine stages\n",
            fmt_nanos(self.total_nanos.max(self.stage_nanos_total())),
            fmt_nanos(self.stage_nanos_total())
        ));
        for s in &self.stages {
            out.push_str(&format!("    {:<18} {}\n", s.stage, fmt_nanos(s.nanos)));
        }
        out.push_str(&format!(
            "  β         : {:.4} [{}]\n",
            self.beta.value,
            self.beta.provenance.label()
        ));
        if let (Some(c), Some(l)) =
            (self.beta.content_effectiveness, self.beta.location_effectiveness)
        {
            out.push_str(&format!(
                "    effectiveness content {c:.4}, location {l:.4} ({} clicks / {} impressions)\n",
                self.beta.clicks.unwrap_or(0),
                self.beta.impressions.unwrap_or(0)
            ));
        }
        out.push_str(&format!(
            "  personalized: {}\n",
            if self.personalized { "yes" } else { "no (baseline order kept)" }
        ));
        if let Some(reason) = self.degraded {
            out.push_str(&format!("  degraded  : yes [{reason}]\n"));
        }
        if let Some(hit) = self.cache_hit {
            out.push_str(&format!("  retrieval cache: {}\n", if hit { "hit" } else { "miss" }));
        }
        let concepts = |cs: &[ConceptTrace]| -> String {
            if cs.is_empty() {
                "(none)".to_string()
            } else {
                cs.iter()
                    .map(|c| format!("{} ({:.2})", c.name, c.support))
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        out.push_str(&format!("  content concepts : {}\n", concepts(&self.content_concepts)));
        out.push_str(&format!("  location concepts: {}\n", concepts(&self.location_concepts)));
        out.push_str(&format!(
            "  results ({} pool candidates, final-rank order):\n",
            self.results.len()
        ));
        if !self.feature_names.is_empty() {
            out.push_str(&format!("    features = [{}]\n", self.feature_names.join(", ")));
        }
        for r in &self.results {
            let movement = match r.rank_delta() {
                0 => "=".to_string(),
                d if d > 0 => format!("↑{d}"),
                d => format!("↓{}", -d),
            };
            let feats: Vec<String> = r.features.iter().map(|f| format!("{f:.3}")).collect();
            out.push_str(&format!(
                "    #{:<3} doc {:<6} base #{:<3} {:>3}  {}  [{}] {:?}\n",
                r.final_rank,
                r.doc,
                r.base_rank,
                movement,
                if r.on_page { "page" } else { "cut " },
                feats.join(", "),
                r.title,
            ));
        }
        out
    }

    /// Serialize to JSON (no external crates). `pretty` adds two-space
    /// indentation at the top level.
    pub fn to_json(&self, pretty: bool) -> String {
        let (nl, ind) = if pretty { ("\n", "  ") } else { ("", "") };
        let sp = if pretty { " " } else { "" };
        let esc = crate::escape;
        let mut out = String::new();
        out.push('{');
        out.push_str(&format!("{nl}{ind}\"user\":{sp}{},", self.user));
        out.push_str(&format!("{nl}{ind}\"query_text\":{sp}\"{}\",", esc(&self.query_text)));
        out.push_str(&format!("{nl}{ind}\"total_nanos\":{sp}{},", self.total_nanos));
        out.push_str(&format!("{nl}{ind}\"personalized\":{sp}{},", self.personalized));
        if let Some(reason) = self.degraded {
            out.push_str(&format!("{nl}{ind}\"degraded\":{sp}\"{}\",", esc(reason)));
        }
        if let Some(hit) = self.cache_hit {
            out.push_str(&format!("{nl}{ind}\"cache_hit\":{sp}{hit},"));
        }
        if let Some(shard) = self.shard {
            out.push_str(&format!("{nl}{ind}\"shard\":{sp}{shard},"));
        }
        if let Some(depth) = self.queue_depth {
            out.push_str(&format!("{nl}{ind}\"queue_depth\":{sp}{depth},"));
        }
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("{{\"stage\":{sp}\"{}\",{sp}\"nanos\":{sp}{}}}", s.stage, s.nanos))
            .collect();
        out.push_str(&format!("{nl}{ind}\"stages\":{sp}[{}],", stages.join(",")));
        out.push_str(&format!(
            "{nl}{ind}\"beta\":{sp}{{\"value\":{sp}{},{sp}\"provenance\":{sp}\"{}\"{}}},",
            self.beta.value,
            esc(self.beta.provenance.label()),
            match (self.beta.content_effectiveness, self.beta.location_effectiveness) {
                (Some(c), Some(l)) => format!(
                    ",{sp}\"content_effectiveness\":{sp}{c},{sp}\"location_effectiveness\":{sp}{l},\
                     {sp}\"clicks\":{sp}{},{sp}\"impressions\":{sp}{}",
                    self.beta.clicks.unwrap_or(0),
                    self.beta.impressions.unwrap_or(0)
                ),
                _ => String::new(),
            }
        ));
        let concept_json = |cs: &[ConceptTrace]| -> String {
            cs.iter()
                .map(|c| {
                    format!(
                        "{{\"name\":{sp}\"{}\",{sp}\"support\":{sp}{}}}",
                        esc(&c.name),
                        c.support
                    )
                })
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "{nl}{ind}\"content_concepts\":{sp}[{}],",
            concept_json(&self.content_concepts)
        ));
        out.push_str(&format!(
            "{nl}{ind}\"location_concepts\":{sp}[{}],",
            concept_json(&self.location_concepts)
        ));
        let results: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                let feats: Vec<String> = r.features.iter().map(|f| format!("{f}")).collect();
                format!(
                    "{{\"doc\":{sp}{},{sp}\"base_rank\":{sp}{},{sp}\"final_rank\":{sp}{},\
                     {sp}\"rank_delta\":{sp}{},{sp}\"on_page\":{sp}{},{sp}\"base_score\":{sp}{},\
                     {sp}\"features\":{sp}[{}]}}",
                    r.doc,
                    r.base_rank,
                    r.final_rank,
                    r.rank_delta(),
                    r.on_page,
                    r.base_score,
                    feats.join(",")
                )
            })
            .collect();
        out.push_str(&format!("{nl}{ind}\"results\":{sp}[{}]{nl}}}", results.join(",")));
        out
    }
}

/// Human-scale duration formatting for trace rendering.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        let mut t = QueryTrace::new(7, "seafood restaurant");
        t.stage("engine.retrieval", 120_000);
        t.stage("engine.concepts", 80_000);
        t.beta = BetaTrace {
            value: 0.62,
            provenance: BetaProvenance::Adaptive,
            content_effectiveness: Some(0.3),
            location_effectiveness: Some(0.5),
            clicks: Some(12),
            impressions: Some(20),
        };
        t.content_concepts.push(ConceptTrace { name: "seafood".into(), support: 0.8 });
        t.location_concepts.push(ConceptTrace { name: "lakemoor".into(), support: 0.4 });
        t.feature_names = vec!["base", "content", "location"];
        t.results.push(ResultTrace {
            doc: 3,
            title: "Seafood lakemoor".into(),
            base_rank: 4,
            final_rank: 1,
            on_page: true,
            base_score: 0.7,
            features: vec![0.7, 0.2, 0.9],
        });
        t.personalized = true;
        t.degraded = Some("deadline_concepts");
        t.shard = Some(2);
        t.queue_depth = Some(1);
        t.total_nanos = 250_000;
        t
    }

    #[test]
    fn rank_delta_signs() {
        let mut r = sample().results[0].clone();
        assert_eq!(r.rank_delta(), 3, "base 4 → final 1 is a +3 promotion");
        r.base_rank = 1;
        r.final_rank = 5;
        assert_eq!(r.rank_delta(), -4);
    }

    #[test]
    fn render_contains_all_decision_inputs() {
        let t = sample();
        let s = t.render();
        for needle in [
            "seafood restaurant",
            "user 7",
            "shard 2",
            "queue depth 1",
            "engine.retrieval",
            "0.6200",
            "adaptive (from click statistics)",
            "12 clicks / 20 impressions",
            "seafood (0.80)",
            "lakemoor (0.40)",
            "base, content, location",
            "↑3",
            "Seafood lakemoor",
            "degraded  : yes [deadline_concepts]",
        ] {
            assert!(s.contains(needle), "render missing {needle:?} in:\n{s}");
        }
    }

    #[test]
    fn json_shape() {
        let t = sample();
        let j = t.to_json(false);
        for needle in [
            "\"user\":7",
            "\"query_text\":\"seafood restaurant\"",
            "\"provenance\":\"adaptive (from click statistics)\"",
            "\"content_effectiveness\":0.3",
            "\"rank_delta\":3",
            "\"shard\":2",
            "\"queue_depth\":1",
            "\"degraded\":\"deadline_concepts\"",
            "\"stages\":[{\"stage\":\"engine.retrieval\",\"nanos\":120000}",
        ] {
            assert!(j.contains(needle), "json missing {needle:?} in:\n{j}");
        }
        assert!(!j.contains('\n'));
        let pretty = t.to_json(true);
        assert!(pretty.contains("\n  \"beta\":"));
    }

    #[test]
    fn stage_total_sums() {
        let t = sample();
        assert_eq!(t.stage_nanos_total(), 200_000);
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(15), "15ns");
        assert_eq!(fmt_nanos(1_500), "1.5µs");
        assert_eq!(fmt_nanos(2_500_000), "2.50ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
