//! Zero-dependency observability for the personalized-search pipeline.
//!
//! Every stage of the engine's hot path (candidate retrieval, concept
//! extraction, feature building, β computation, re-ranking, click
//! observation) records into a process-global registry of
//! [`StageMetrics`]: an atomic invocation counter, a running total of
//! nanoseconds, and a log₂-bucketed latency histogram from which
//! p50/p95/p99 are estimated. Everything is lock-free on the record
//! path (a mutex guards only stage *registration*), so instrumented
//! code can run unchanged across the parallel evaluation harness.
//!
//! # Recording
//!
//! Stages are interned by name; [`stage`] returns a shared handle that
//! callers cache. The usual pattern is an RAII [`Span`] that records
//! its elapsed wall-clock time on drop:
//!
//! ```
//! let stage = pws_obs::stage("docs.example");
//! {
//!     let _timer = stage.span();
//!     // ... the work being measured ...
//! }
//! assert_eq!(stage.count(), 1);
//! assert!(stage.total_nanos() > 0);
//! ```
//!
//! # Snapshots
//!
//! [`snapshot`] captures every registered stage into a plain-data
//! [`MetricsSnapshot`], serializable to JSON without any external
//! crates:
//!
//! ```
//! pws_obs::stage("docs.demo").record_nanos(1_500);
//! let snap = pws_obs::snapshot();
//! let json = snap.to_json(true);
//! assert!(json.contains("\"docs.demo\""));
//! assert!(json.contains("\"p99_nanos\""));
//! ```
//!
//! # Accuracy
//!
//! Histogram buckets double in width; percentile estimates report the
//! **midpoint** of the bucket containing the requested rank, so the
//! resolution error is at most ±50% of the true value (an upper-bound
//! report would be biased high by up to 2×). The two edge buckets are
//! exact-zero (reported as 0) and the unbounded catch-all for values
//! ≥ 2⁶² (reported as its lower bound). Adequate for spotting
//! stage-level regressions, not for microbenchmarks (use `pws-bench`
//! for those). Counters use relaxed atomics: totals are exact once
//! threads quiesce, but a snapshot taken mid-flight may observe a
//! count and total from slightly different instants.
//!
//! # Tracing and export
//!
//! Aggregates answer "how slow is stage X overall"; the [`trace`]
//! module holds the plain-data per-query [`trace::QueryTrace`] record
//! the engine fills when a caller asks "why did *this* query rank the
//! way it did". [`prometheus_text`] renders the whole registry in the
//! Prometheus text exposition format for scraping.

pub mod prometheus;
pub mod trace;

pub use prometheus::prometheus_text;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of log₂ histogram buckets. Bucket 0 holds exact zeros;
/// bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`; the last bucket
/// absorbs everything from `2^62` up to `u64::MAX`.
pub const BUCKETS: usize = 64;

/// Metrics for one named pipeline stage.
///
/// All methods take `&self` and are safe to call from any thread.
pub struct StageMetrics {
    name: String,
    count: AtomicU64,
    total_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// The histogram bucket a value falls into (see [`BUCKETS`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Upper bound of a bucket (inclusive). Used for the Prometheus `le`
/// bucket boundaries, not as the percentile representative.
#[inline]
pub(crate) fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        b if b >= BUCKETS - 1 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

/// Midpoint of a bucket, used as its representative value when
/// estimating percentiles. Reporting the midpoint instead of the upper
/// bound removes the systematic high bias (up to 2×) the log₂ buckets
/// would otherwise introduce; the residual error is at most ±50% of
/// the true value. Bucket 0 is exactly zero; the unbounded top bucket
/// reports its lower bound `2⁶²` (it has no meaningful midpoint).
#[inline]
fn bucket_mid(index: usize) -> u64 {
    match index {
        0 => 0,
        b if b >= BUCKETS - 1 => 1u64 << 62,
        b => {
            let lower = 1u64 << (b - 1);
            let upper = (1u64 << b) - 1;
            lower + (upper - lower) / 2
        }
    }
}

impl StageMetrics {
    fn new(name: &str) -> Self {
        StageMetrics {
            name: name.to_string(),
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The stage's registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record one observation of `nanos` elapsed time.
    pub fn record_nanos(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Bump the invocation counter by `n` without timing anything
    /// (pure event counters).
    pub fn incr(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one observation of an arbitrary non-time value (queue
    /// depths, batch sizes, …). Identical storage to [`record_nanos`] —
    /// the histogram and percentiles then read in that value's unit
    /// rather than nanoseconds.
    ///
    /// [`record_nanos`]: Self::record_nanos
    pub fn record_value(&self, value: u64) {
        self.record_nanos(value);
    }

    /// Start an RAII timer that records into this stage when dropped.
    pub fn span(&self) -> Span<'_> {
        Span { stage: self, start: Instant::now() }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Total recorded nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.total_nanos.load(Ordering::Relaxed)
    }

    /// Zero all counters and buckets.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_nanos.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Capture this stage into plain data.
    pub fn snapshot(&self) -> StageSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let histogram_count: u64 = buckets.iter().sum();
        let count = self.count();
        let total_nanos = self.total_nanos();
        let mean_nanos =
            if histogram_count == 0 { 0.0 } else { total_nanos as f64 / histogram_count as f64 };
        StageSnapshot {
            name: self.name.clone(),
            count,
            total_nanos,
            mean_nanos,
            p50_nanos: percentile(&buckets, histogram_count, 0.50),
            p95_nanos: percentile(&buckets, histogram_count, 0.95),
            p99_nanos: percentile(&buckets, histogram_count, 0.99),
            buckets,
        }
    }
}

/// Estimate the `q`-quantile from log₂ bucket counts: the midpoint of
/// the bucket containing the `ceil(q·total)`-th observation (see
/// [`bucket_mid`] for the error bound).
pub(crate) fn percentile(buckets: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_mid(i);
        }
    }
    bucket_mid(BUCKETS - 1)
}

/// RAII timer returned by [`StageMetrics::span`]. Records the elapsed
/// wall-clock time into its stage when dropped.
#[must_use = "a Span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    stage: &'a StageMetrics,
    start: Instant,
}

impl Span<'_> {
    /// Record now (exactly as dropping would) and return the elapsed
    /// nanoseconds. Lets a caller feed the same measurement into a
    /// per-query [`trace::QueryTrace`] without timing twice.
    pub fn finish(self) -> u64 {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage.record_nanos(nanos);
        std::mem::forget(self);
        nanos
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.stage.record_nanos(nanos);
    }
}

fn registry() -> &'static Mutex<HashMap<String, Arc<StageMetrics>>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arc<StageMetrics>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Intern `name` in the global registry and return its shared handle.
///
/// Handles are cheap to clone and callers on hot paths should resolve
/// them once (e.g. at engine construction), not per call.
pub fn stage(name: &str) -> Arc<StageMetrics> {
    let mut map = registry().lock().expect("metrics registry poisoned");
    map.entry(name.to_string()).or_insert_with(|| Arc::new(StageMetrics::new(name))).clone()
}

/// Intern one stage per shard: `"{prefix}{i}.{name}"` for `i` in
/// `0..shards` (e.g. `serve.shard0.search`, `serve.shard1.search`, …).
///
/// The returned handles are index-aligned with the caller's shard
/// vector, so a sharded component resolves its whole per-shard metric
/// family in one call at construction and indexes it lock-free on the
/// hot path.
pub fn shard_stages(prefix: &str, shards: usize, name: &str) -> Vec<Arc<StageMetrics>> {
    (0..shards).map(|i| stage(&format!("{prefix}{i}.{name}"))).collect()
}

/// Capture every registered stage, sorted by name.
pub fn snapshot() -> MetricsSnapshot {
    let map = registry().lock().expect("metrics registry poisoned");
    let mut stages: Vec<StageSnapshot> = map.values().map(|s| s.snapshot()).collect();
    stages.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot { stages }
}

/// Zero every registered stage (stages stay registered).
pub fn reset() {
    let map = registry().lock().expect("metrics registry poisoned");
    for s in map.values() {
        s.reset();
    }
}

/// Serialize tests that touch the process-global registry.
///
/// The registry is shared by every test in a test binary, so a test
/// that calls [`reset`] (or asserts exact counts on stages other tests
/// also record into) can be perturbed by a concurrently running test.
/// Such tests must hold this guard for their whole body:
///
/// ```
/// let _guard = pws_obs::test_lock();
/// pws_obs::reset();
/// // ... assertions on global stage counts ...
/// ```
///
/// The lock recovers from poisoning (a panicking test must not
/// cascade into every later test that takes the guard).
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Plain-data capture of one stage (see [`StageMetrics::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Registered stage name.
    pub name: String,
    /// Observations (span/record calls plus [`StageMetrics::incr`]).
    pub count: u64,
    /// Sum of recorded durations.
    pub total_nanos: u64,
    /// Mean recorded duration (0 when nothing was timed).
    pub mean_nanos: f64,
    /// Estimated median duration (bucket midpoint; error ≤ ±50%).
    pub p50_nanos: u64,
    /// Estimated 95th-percentile duration.
    pub p95_nanos: u64,
    /// Estimated 99th-percentile duration.
    pub p99_nanos: u64,
    /// Raw log₂ histogram bucket counts (see [`bucket_index`]). Carried
    /// so snapshots can be merged and exported with full resolution;
    /// omitted from [`MetricsSnapshot::to_json`] to keep the JSON
    /// profile compact.
    pub buckets: Vec<u64>,
}

impl StageSnapshot {
    /// Fold `other` (a snapshot of the same logical stage, e.g. from
    /// another process or run) into this one: counts, totals, and
    /// buckets sum; mean and percentiles are recomputed from the
    /// combined histogram.
    pub fn merge(&mut self, other: &StageSnapshot) {
        // Wrapping, matching the relaxed-atomic accumulation in
        // `StageMetrics` (which also wraps on overflow).
        self.count = self.count.wrapping_add(other.count);
        self.total_nanos = self.total_nanos.wrapping_add(other.total_nanos);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        let histogram_count: u64 = self.buckets.iter().sum();
        self.mean_nanos = if histogram_count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / histogram_count as f64
        };
        self.p50_nanos = percentile(&self.buckets, histogram_count, 0.50);
        self.p95_nanos = percentile(&self.buckets, histogram_count, 0.95);
        self.p99_nanos = percentile(&self.buckets, histogram_count, 0.99);
    }
}

/// Plain-data capture of the whole registry, JSON-serializable without
/// external dependencies.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// All registered stages, sorted by name.
    pub stages: Vec<StageSnapshot>,
}

impl MetricsSnapshot {
    /// Union-merge `other` into this snapshot: stages present in both
    /// are combined via [`StageSnapshot::merge`] (summed buckets,
    /// recomputed percentiles); stages only in `other` are adopted.
    /// Use to combine profiles from multiple processes or bench runs.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for s in &other.stages {
            match self.stages.iter_mut().find(|mine| mine.name == s.name) {
                Some(mine) => mine.merge(s),
                None => self.stages.push(s.clone()),
            }
        }
        self.stages.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Serialize to JSON. `pretty` adds two-space indentation.
    pub fn to_json(&self, pretty: bool) -> String {
        let (nl, ind, ind2, sp) = if pretty { ("\n", "  ", "    ", " ") } else { ("", "", "", "") };
        let mut out = String::new();
        out.push_str(&format!("{{{nl}{ind}\"stages\":{sp}["));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{nl}{ind2}{{\"name\":{sp}\"{}\",{sp}\"count\":{sp}{},{sp}\
                 \"total_nanos\":{sp}{},{sp}\"mean_nanos\":{sp}{:.1},{sp}\
                 \"p50_nanos\":{sp}{},{sp}\"p95_nanos\":{sp}{},{sp}\"p99_nanos\":{sp}{}}}",
                escape(&s.name),
                s.count,
                s.total_nanos,
                s.mean_nanos,
                s.p50_nanos,
                s.p95_nanos,
                s.p99_nanos,
            ));
        }
        out.push_str(&format!("{nl}{ind}]{nl}}}"));
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // Zero gets its own bucket.
        assert_eq!(bucket_index(0), 0);
        // One is the first nonzero bucket.
        assert_eq!(bucket_index(1), 1);
        // Powers of two open a new bucket; their predecessors close one.
        for k in 1..62u32 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(v - 1), k as usize, "2^{k} - 1");
        }
        // The top bucket absorbs the giants.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 62), BUCKETS - 1);
        assert_eq!(bucket_index(1u64 << 63), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value's bucket upper bound is >= the value (except the
        // saturating top bucket, where it's u64::MAX by construction).
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, 1_000_000, u64::MAX] {
            assert!(bucket_upper(bucket_index(v)) >= v, "value {v}");
        }
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_midpoints_sit_inside_their_bucket() {
        // The percentile representative must lie within [lower, upper]
        // for every bucket, at the boundary values 1, 2^k, 2^k − 1 and
        // the extremes 0 / u64::MAX.
        assert_eq!(bucket_mid(0), 0);
        assert_eq!(bucket_mid(1), 1, "bucket [1, 2) has the single value 1");
        assert_eq!(bucket_mid(2), 2, "bucket [2, 4) midpoint");
        assert_eq!(bucket_mid(10), 767, "bucket [512, 1024) midpoint");
        for k in 1..62u32 {
            for v in [1u64 << k, (1u64 << k) - 1] {
                let b = bucket_index(v);
                let (lower, upper) = (1u64 << (b - 1), bucket_upper(b));
                let mid = bucket_mid(b);
                assert!(
                    (lower..=upper).contains(&mid),
                    "bucket {b} of value {v}: mid {mid} outside [{lower}, {upper}]"
                );
                // Midpoint error bound: within ±50% of any value in the
                // bucket (the reason midpoints replaced upper bounds).
                assert!(mid as f64 >= v as f64 * 0.5 && mid as f64 <= v as f64 * 1.5);
            }
        }
        // The unbounded top bucket reports its lower bound.
        assert_eq!(bucket_mid(bucket_index(u64::MAX)), 1u64 << 62);
        assert_eq!(bucket_mid(bucket_index(1u64 << 63)), 1u64 << 62);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let m = StageMetrics::new("test.percentiles");
        // 99 fast observations (~1µs) and one slow outlier (~1ms).
        for _ in 0..99 {
            m.record_nanos(1_000);
        }
        m.record_nanos(1_000_000);
        let s = m.snapshot();
        assert_eq!(s.count, 100);
        // 1000 lands in bucket [512, 1024): midpoint 767.
        assert_eq!(s.p50_nanos, 767);
        assert_eq!(s.p95_nanos, 767);
        // The p99 rank is exactly the 99th observation — still fast; the
        // outlier is only visible at p100-ish ranks.
        assert_eq!(s.p99_nanos, 767);
        assert_eq!(s.total_nanos, 99 * 1_000 + 1_000_000);
        // Mean reflects the outlier.
        assert!((s.mean_nanos - 10_990.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_extreme_values() {
        let m = StageMetrics::new("test.extremes");
        m.record_nanos(0);
        m.record_nanos(u64::MAX);
        let s = m.snapshot();
        assert_eq!(s.p50_nanos, 0);
        // The unbounded top bucket reports its lower bound 2^62.
        assert_eq!(s.p95_nanos, 1u64 << 62);
        assert_eq!(s.p99_nanos, 1u64 << 62);
        assert_eq!(s.total_nanos, u64::MAX);
    }

    #[test]
    fn empty_stage_snapshots_as_zeros() {
        let s = StageMetrics::new("test.empty").snapshot();
        assert_eq!(
            (s.count, s.total_nanos, s.p50_nanos, s.p95_nanos, s.p99_nanos),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(s.mean_nanos, 0.0);
    }

    #[test]
    fn span_records_on_drop() {
        let m = StageMetrics::new("test.span");
        {
            let _t = m.span();
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(m.count(), 1);
        assert!(m.total_nanos() >= 1_000_000, "slept ≥ 1ms");
    }

    #[test]
    fn incr_counts_without_timing() {
        let m = StageMetrics::new("test.incr");
        m.incr(3);
        m.incr(2);
        let s = m.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.total_nanos, 0);
        // Nothing was *timed*, so the histogram (and mean) stay empty.
        assert_eq!(s.mean_nanos, 0.0);
    }

    #[test]
    fn registry_interns_and_resets() {
        let a = stage("test.registry.shared");
        let b = stage("test.registry.shared");
        a.record_nanos(10);
        b.record_nanos(20);
        assert_eq!(a.count(), 2, "same underlying stage");
        a.reset();
        assert_eq!(b.count(), 0);
        assert!(snapshot().stages.iter().any(|s| s.name == "test.registry.shared"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = stage("test.concurrent");
        m.reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        m.record_nanos(100);
                    }
                });
            }
        });
        assert_eq!(m.count(), 40_000);
        assert_eq!(m.total_nanos(), 4_000_000);
    }

    #[test]
    fn shard_stages_interned_index_aligned() {
        let fam = shard_stages("test.shardfam", 3, "search");
        assert_eq!(fam.len(), 3);
        assert_eq!(fam[0].name(), "test.shardfam0.search");
        assert_eq!(fam[2].name(), "test.shardfam2.search");
        // Same family resolved again → same underlying stages.
        let again = shard_stages("test.shardfam", 3, "search");
        fam[1].record_nanos(7);
        assert_eq!(again[1].count(), 1);
    }

    #[test]
    fn record_value_feeds_the_histogram() {
        let m = StageMetrics::new("test.value");
        for depth in [0u64, 2, 2, 9] {
            m.record_value(depth);
        }
        let s = m.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.total_nanos, 13, "total is in the value's unit");
        // Depth 2 lands in bucket [2, 4): midpoint 2.
        assert_eq!(s.p50_nanos, 2);
    }

    /// Deterministic pseudo-random stream for the merge property test.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn merged_percentiles_equal_recombined_histogram() {
        // Property: for arbitrary observation sets A and B,
        // merge(snapshot(A), snapshot(B)) reports exactly the
        // percentiles of snapshot(A ∪ B). 64 random splits.
        let mut seed = 42u64;
        for case in 0..64 {
            let n_a = (splitmix(&mut seed) % 50) as usize;
            let n_b = (splitmix(&mut seed) % 50) as usize;
            let a = StageMetrics::new("test.merge");
            let b = StageMetrics::new("test.merge");
            let combined = StageMetrics::new("test.merge");
            for _ in 0..n_a {
                let v = splitmix(&mut seed) >> (splitmix(&mut seed) % 64);
                a.record_nanos(v);
                combined.record_nanos(v);
            }
            for _ in 0..n_b {
                let v = splitmix(&mut seed) >> (splitmix(&mut seed) % 64);
                b.record_nanos(v);
                combined.record_nanos(v);
            }
            let mut merged = a.snapshot();
            merged.merge(&b.snapshot());
            let expect = combined.snapshot();
            assert_eq!(merged.count, expect.count, "case {case}");
            assert_eq!(merged.total_nanos, expect.total_nanos, "case {case}");
            assert_eq!(merged.buckets, expect.buckets, "case {case}");
            assert_eq!(merged.p50_nanos, expect.p50_nanos, "case {case}");
            assert_eq!(merged.p95_nanos, expect.p95_nanos, "case {case}");
            assert_eq!(merged.p99_nanos, expect.p99_nanos, "case {case}");
            assert!((merged.mean_nanos - expect.mean_nanos).abs() < 1e-9, "case {case}");
        }
    }

    #[test]
    fn snapshot_merge_unions_stages() {
        let x = StageMetrics::new("test.union.x");
        x.record_nanos(10);
        let y = StageMetrics::new("test.union.y");
        y.record_nanos(20);
        let shared_a = StageMetrics::new("test.union.shared");
        shared_a.record_nanos(100);
        let shared_b = StageMetrics::new("test.union.shared");
        shared_b.record_nanos(200);

        let mut left = MetricsSnapshot { stages: vec![shared_a.snapshot(), x.snapshot()] };
        let right = MetricsSnapshot { stages: vec![y.snapshot(), shared_b.snapshot()] };
        left.merge(&right);

        let names: Vec<&str> = left.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["test.union.shared", "test.union.x", "test.union.y"]);
        let shared = &left.stages[0];
        assert_eq!(shared.count, 2);
        assert_eq!(shared.total_nanos, 300);
    }

    #[test]
    fn json_shape_compact_and_pretty() {
        let m = StageMetrics::new("test.json \"quoted\"");
        m.record_nanos(5);
        let snap = MetricsSnapshot { stages: vec![m.snapshot()] };
        let compact = snap.to_json(false);
        assert!(compact.starts_with("{\"stages\": [".replace(' ', "").as_str()));
        assert!(compact.contains("\\\"quoted\\\""));
        assert!(!compact.contains('\n'));
        let pretty = snap.to_json(true);
        assert!(pretty.contains("\n    {\"name\": "));
        assert!(pretty.ends_with("\n  ]\n}"));
    }
}
