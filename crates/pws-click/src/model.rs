//! Click models.
//!
//! Turn a ranked result list plus latent relevance grades into clicks.
//! Two standard families:
//!
//! * [`PositionBiasModel`] — the examination hypothesis: the user examines
//!   rank *i* with probability `gamma^(i-1)` and clicks an examined result
//!   with a grade-dependent probability;
//! * [`CascadeModel`] — the user scans top-down, clicks the first
//!   satisfying result, and stops with a grade-dependent probability.
//!
//! Both simulate dwell consistent with the latent grade so the dwell-based
//! observable grading recovers it with realistic noise.

use crate::log::Click;
use crate::relevance::Grade;
use rand::rngs::StdRng;
use rand::Rng;

/// A click model maps `(grades by rank)` to clicks.
pub trait ClickModel {
    /// Simulate clicks for one impression. `grades[i]` is the latent grade
    /// of the result at rank `i+1`; `docs[i]` its doc id. `noise` is the
    /// user's per-interaction noise level.
    fn simulate(&self, docs: &[u32], grades: &[Grade], noise: f64, rng: &mut StdRng) -> Vec<Click>;
}

/// Sample dwell consistent with a grade. Noise occasionally shifts one
/// bucket down (the user satisfied less than the content deserved).
fn sample_dwell(grade: Grade, noise: f64, rng: &mut StdRng) -> u32 {
    let effective = if rng.gen_bool(noise.clamp(0.0, 1.0)) {
        // Degrade one level.
        Grade::from_level(grade.gain().saturating_sub(1))
    } else {
        grade
    };
    match effective {
        Grade::HighlyRelevant => rng.gen_range(400..1200),
        Grade::Relevant => rng.gen_range(50..400),
        Grade::Irrelevant => rng.gen_range(1..50),
    }
}

/// Examination-hypothesis model with geometric position decay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionBiasModel {
    /// Examination decay per rank; P(examine rank i) = gamma^(i-1).
    pub gamma: f64,
    /// P(click | examined, grade 2).
    pub p_click_high: f64,
    /// P(click | examined, grade 1).
    pub p_click_rel: f64,
    /// P(click | examined, grade 0) — noise clicks.
    pub p_click_irr: f64,
}

impl Default for PositionBiasModel {
    fn default() -> Self {
        PositionBiasModel { gamma: 0.8, p_click_high: 0.85, p_click_rel: 0.5, p_click_irr: 0.04 }
    }
}

impl ClickModel for PositionBiasModel {
    fn simulate(&self, docs: &[u32], grades: &[Grade], noise: f64, rng: &mut StdRng) -> Vec<Click> {
        debug_assert_eq!(docs.len(), grades.len());
        let mut clicks = Vec::new();
        let mut examine_p: f64 = 1.0;
        for (i, (&doc, &grade)) in docs.iter().zip(grades).enumerate() {
            if rng.gen_bool(examine_p.clamp(0.0, 1.0)) {
                let p = match grade {
                    Grade::HighlyRelevant => self.p_click_high,
                    Grade::Relevant => self.p_click_rel,
                    Grade::Irrelevant => self.p_click_irr.max(noise * 0.5),
                };
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    clicks.push(Click {
                        doc,
                        rank: i + 1,
                        dwell: sample_dwell(grade, noise, rng),
                    });
                }
            }
            examine_p *= self.gamma;
        }
        clicks
    }
}

/// Cascade model: scan top-down; click on satisfying results; stop after a
/// click with grade-dependent probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeModel {
    /// P(click | grade 2).
    pub p_click_high: f64,
    /// P(click | grade 1).
    pub p_click_rel: f64,
    /// P(click | grade 0).
    pub p_click_irr: f64,
    /// P(stop scanning | clicked grade 2).
    pub p_stop_high: f64,
    /// P(stop scanning | clicked grade 1).
    pub p_stop_rel: f64,
    /// P(abandon without click at each rank).
    pub p_abandon: f64,
}

impl Default for CascadeModel {
    fn default() -> Self {
        CascadeModel {
            p_click_high: 0.9,
            p_click_rel: 0.55,
            p_click_irr: 0.03,
            p_stop_high: 0.85,
            p_stop_rel: 0.45,
            p_abandon: 0.08,
        }
    }
}

impl ClickModel for CascadeModel {
    fn simulate(&self, docs: &[u32], grades: &[Grade], noise: f64, rng: &mut StdRng) -> Vec<Click> {
        debug_assert_eq!(docs.len(), grades.len());
        let mut clicks = Vec::new();
        for (i, (&doc, &grade)) in docs.iter().zip(grades).enumerate() {
            let p_click = match grade {
                Grade::HighlyRelevant => self.p_click_high,
                Grade::Relevant => self.p_click_rel,
                Grade::Irrelevant => self.p_click_irr.max(noise * 0.5),
            };
            if rng.gen_bool(p_click.clamp(0.0, 1.0)) {
                clicks.push(Click { doc, rank: i + 1, dwell: sample_dwell(grade, noise, rng) });
                let p_stop = match grade {
                    Grade::HighlyRelevant => self.p_stop_high,
                    Grade::Relevant => self.p_stop_rel,
                    Grade::Irrelevant => 0.05,
                };
                if rng.gen_bool(p_stop.clamp(0.0, 1.0)) {
                    break;
                }
            } else if rng.gen_bool(self.p_abandon.clamp(0.0, 1.0)) {
                break;
            }
        }
        clicks
    }
}

/// Dynamic-Bayesian-Network click model (Chapelle & Zhang, 2009).
///
/// The user scans top-down. At each examined result: click with the
/// grade's *attractiveness*; if clicked, be *satisfied* with the grade's
/// satisfaction probability and stop; otherwise continue scanning with
/// perseverance `gamma`. Unlike the cascade model, an unsatisfying click
/// does not end the session — matching the "click, come back, keep
/// looking" pattern real logs show.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbnModel {
    /// P(click | examined), indexed by grade gain (0, 1, 2).
    pub attractiveness: [f64; 3],
    /// P(satisfied | clicked), indexed by grade gain.
    pub satisfaction: [f64; 3],
    /// P(continue scanning | not satisfied at this rank).
    pub gamma: f64,
}

impl Default for DbnModel {
    fn default() -> Self {
        DbnModel {
            attractiveness: [0.05, 0.55, 0.85],
            satisfaction: [0.02, 0.45, 0.85],
            gamma: 0.85,
        }
    }
}

impl ClickModel for DbnModel {
    fn simulate(&self, docs: &[u32], grades: &[Grade], noise: f64, rng: &mut StdRng) -> Vec<Click> {
        debug_assert_eq!(docs.len(), grades.len());
        let mut clicks = Vec::new();
        for (i, (&doc, &grade)) in docs.iter().zip(grades).enumerate() {
            let g = grade.gain() as usize;
            let attract = self.attractiveness[g].max(noise * 0.5);
            if rng.gen_bool(attract.clamp(0.0, 1.0)) {
                clicks.push(Click { doc, rank: i + 1, dwell: sample_dwell(grade, noise, rng) });
                if rng.gen_bool(self.satisfaction[g].clamp(0.0, 1.0)) {
                    break; // satisfied — session over
                }
            }
            if !rng.gen_bool(self.gamma.clamp(0.0, 1.0)) {
                break; // gave up
            }
        }
        clicks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn grades(pattern: &[u32]) -> Vec<Grade> {
        pattern.iter().map(|&g| Grade::from_level(g)).collect()
    }

    fn docs(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn relevant_docs_get_clicked_more_often() {
        let m = PositionBiasModel::default();
        let mut r = rng();
        let g = grades(&[2, 0, 0, 0, 0]);
        let d = docs(5);
        let mut top_clicks = 0;
        let mut irr_clicks = 0;
        for _ in 0..500 {
            for c in m.simulate(&d, &g, 0.02, &mut r) {
                if c.rank == 1 {
                    top_clicks += 1;
                } else {
                    irr_clicks += 1;
                }
            }
        }
        assert!(top_clicks > irr_clicks * 3, "{top_clicks} vs {irr_clicks}");
    }

    #[test]
    fn position_bias_suppresses_deep_clicks() {
        let m = PositionBiasModel::default();
        let mut r = rng();
        // Identical high grades everywhere; clicks should still skew shallow.
        let g = grades(&[2; 10]);
        let d = docs(10);
        let mut by_rank = [0u32; 10];
        for _ in 0..2000 {
            for c in m.simulate(&d, &g, 0.02, &mut r) {
                by_rank[c.rank - 1] += 1;
            }
        }
        assert!(by_rank[0] > by_rank[4], "{by_rank:?}");
        assert!(by_rank[4] > by_rank[9], "{by_rank:?}");
    }

    #[test]
    fn dwell_correlates_with_grade() {
        let m = PositionBiasModel::default();
        let mut r = rng();
        let d = docs(1);
        let mut high_dwell = Vec::new();
        let mut irr_dwell = Vec::new();
        for _ in 0..2000 {
            for c in m.simulate(&d, &grades(&[2]), 0.0, &mut r) {
                high_dwell.push(c.dwell);
            }
            for c in m.simulate(&d, &grades(&[0]), 0.0, &mut r) {
                irr_dwell.push(c.dwell);
            }
        }
        assert!(!high_dwell.is_empty());
        assert!(high_dwell.iter().all(|&d| d >= 400));
        assert!(irr_dwell.iter().all(|&d| d < 50));
    }

    #[test]
    fn cascade_stops_after_satisfying_click() {
        let m = CascadeModel { p_stop_high: 1.0, p_click_high: 1.0, ..CascadeModel::default() };
        let mut r = rng();
        let g = grades(&[2, 2, 2]);
        let clicks = m.simulate(&docs(3), &g, 0.0, &mut r);
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].rank, 1);
    }

    #[test]
    fn cascade_click_ranks_ascend() {
        let m = CascadeModel::default();
        let mut r = rng();
        let g = grades(&[1, 1, 1, 1, 1, 1]);
        for _ in 0..200 {
            let clicks = m.simulate(&docs(6), &g, 0.05, &mut r);
            for w in clicks.windows(2) {
                assert!(w[0].rank < w[1].rank);
            }
        }
    }

    #[test]
    fn empty_list_yields_no_clicks() {
        let m = PositionBiasModel::default();
        let mut r = rng();
        assert!(m.simulate(&[], &[], 0.0, &mut r).is_empty());
        let c = CascadeModel::default();
        assert!(c.simulate(&[], &[], 0.0, &mut r).is_empty());
    }

    #[test]
    fn dbn_satisfied_click_ends_session() {
        let m = DbnModel {
            attractiveness: [0.0, 1.0, 1.0],
            satisfaction: [0.0, 1.0, 1.0],
            gamma: 1.0,
        };
        let mut r = rng();
        let clicks = m.simulate(&docs(5), &grades(&[2, 2, 2, 2, 2]), 0.0, &mut r);
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].rank, 1);
    }

    #[test]
    fn dbn_unsatisfying_click_continues() {
        // Attractive but never satisfying: multiple clicks per session.
        let m = DbnModel {
            attractiveness: [0.0, 1.0, 1.0],
            satisfaction: [0.0, 0.0, 0.0],
            gamma: 1.0,
        };
        let mut r = rng();
        let clicks = m.simulate(&docs(4), &grades(&[1, 1, 1, 1]), 0.0, &mut r);
        assert_eq!(clicks.len(), 4, "all attractive results clicked");
    }

    #[test]
    fn dbn_abandonment_truncates_scans() {
        let m = DbnModel { gamma: 0.3, ..DbnModel::default() };
        let mut r = rng();
        let g = grades(&[0; 10]);
        let mut deepest = 0;
        for _ in 0..500 {
            for c in m.simulate(&docs(10), &g, 0.0, &mut r) {
                deepest = deepest.max(c.rank);
            }
        }
        assert!(deepest < 10, "low perseverance should rarely reach rank 10");
    }

    #[test]
    fn dbn_prefers_relevant() {
        let m = DbnModel::default();
        let mut r = rng();
        let g = grades(&[0, 2, 0]);
        let mut rel = 0;
        let mut irr = 0;
        for _ in 0..1000 {
            for c in m.simulate(&docs(3), &g, 0.02, &mut r) {
                if c.rank == 2 {
                    rel += 1;
                } else {
                    irr += 1;
                }
            }
        }
        assert!(rel > irr * 3, "{rel} vs {irr}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = PositionBiasModel::default();
        let g = grades(&[2, 1, 0, 1]);
        let d = docs(4);
        let a = m.simulate(&d, &g, 0.05, &mut StdRng::seed_from_u64(7));
        let b = m.simulate(&d, &g, 0.05, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
