//! Ground-truth graded relevance.
//!
//! Grades follow the conventional 3-level scale:
//! 0 = irrelevant, 1 = relevant, 2 = highly relevant.
//!
//! The grade of document `d` for `(user u, query q, intent city c)`:
//!
//! * topic mismatch ⇒ grade 0 — always;
//! * topical match starts at grade 1;
//! * **content**: `d.subtopic == u.favorite_subtopic[q.topic]` ⇒ +1;
//! * **location** (location-sensitive / explicit-location queries only,
//!   scaled by the user's `loc_affinity`):
//!   * `d.city == c` ⇒ +1,
//!   * `d.city` set but a *different* city ⇒ the doc is about somewhere the
//!     user is not: grade forced to 0 (with probability `loc_affinity`,
//!     else left topical),
//!   * `d.city == None` (global doc) ⇒ unchanged;
//! * grades cap at 2.
//!
//! The randomness for the `loc_affinity` coin is supplied by the caller so
//! grading stays reproducible.

use crate::user::SimUser;
use pws_corpus::query::{Query, QueryClass};
use pws_corpus::Document;
use pws_geo::LocId;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Relevance grade (0 | 1 | 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Grade {
    /// Not what the user wanted.
    Irrelevant,
    /// Topically right.
    Relevant,
    /// Topically right and matches the user's content/location preference.
    HighlyRelevant,
}

impl Grade {
    /// Numeric gain used by nDCG and dwell simulation.
    pub fn gain(self) -> u32 {
        match self {
            Grade::Irrelevant => 0,
            Grade::Relevant => 1,
            Grade::HighlyRelevant => 2,
        }
    }

    /// From a numeric level, saturating at 2.
    pub fn from_level(level: u32) -> Grade {
        match level {
            0 => Grade::Irrelevant,
            1 => Grade::Relevant,
            _ => Grade::HighlyRelevant,
        }
    }

    /// Is the grade at least `Relevant`?
    pub fn is_relevant(self) -> bool {
        self != Grade::Irrelevant
    }
}

/// Compute the latent grade of `doc` for `(user, query)` with the given
/// per-issue `intent_city` (only consulted for location-aware classes).
pub fn relevance_grade(
    user: &SimUser,
    query: &Query,
    intent_city: LocId,
    doc: &Document,
    rng: &mut StdRng,
) -> Grade {
    if doc.topic != query.topic {
        return Grade::Irrelevant;
    }
    let mut level: u32 = 1;

    // Content preference: favorite subtopic.
    let fav = user
        .favorite_subtopic
        .get(query.topic.index())
        .copied()
        .unwrap_or(0);
    if doc.subtopic == fav {
        level += 1;
    }

    // Location preference.
    let location_matters =
        matches!(query.class, QueryClass::LocationSensitive | QueryClass::ExplicitLocation);
    if location_matters {
        match doc.city {
            Some(c) if c == intent_city => level += 1,
            Some(_) => {
                // Wrong city: with probability loc_affinity the user rejects
                // the result outright; even a tolerant user never finds a
                // wrong-city result *highly* relevant.
                if rng.gen_bool(user.loc_affinity) {
                    return Grade::Irrelevant;
                }
                level = level.min(1);
            }
            None => {}
        }
    }

    Grade::from_level(level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::UserId;
    use pws_corpus::query::QueryId;
    use pws_corpus::vocab::TopicId;
    use pws_corpus::DocId;
    use rand::SeedableRng;

    fn user(fav: u8, loc_affinity: f64) -> SimUser {
        SimUser {
            id: UserId(0),
            home_city: LocId(10),
            secondary_city: LocId(11),
            home_bias: 0.9,
            loc_affinity,
            favorite_subtopic: vec![fav, 0, 0, 0],
            favored_topics: vec![0],
            focus: 0.8,
            noise: 0.0,
        }
    }

    fn query(class: QueryClass) -> Query {
        Query { id: QueryId(0), text: "restaurant".into(), topic: TopicId(0), class }
    }

    fn doc(topic: u16, subtopic: u8, city: Option<u32>) -> Document {
        Document {
            id: DocId(0),
            url: "u".into(),
            domain: "d".into(),
            title: "t".into(),
            body: "b".into(),
            topic: TopicId(topic),
            subtopic,
            city: city.map(LocId),
        }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn topic_mismatch_is_irrelevant() {
        let g = relevance_grade(&user(0, 1.0), &query(QueryClass::Content), LocId(10),
            &doc(1, 0, None), &mut rng());
        assert_eq!(g, Grade::Irrelevant);
    }

    #[test]
    fn topical_match_is_relevant() {
        let g = relevance_grade(&user(2, 1.0), &query(QueryClass::Content), LocId(10),
            &doc(0, 0, None), &mut rng());
        assert_eq!(g, Grade::Relevant);
    }

    #[test]
    fn favorite_subtopic_upgrades() {
        let g = relevance_grade(&user(1, 1.0), &query(QueryClass::Content), LocId(10),
            &doc(0, 1, None), &mut rng());
        assert_eq!(g, Grade::HighlyRelevant);
    }

    #[test]
    fn content_query_ignores_city() {
        // Wrong city on a content query: no penalty.
        let g = relevance_grade(&user(2, 1.0), &query(QueryClass::Content), LocId(10),
            &doc(0, 0, Some(99)), &mut rng());
        assert_eq!(g, Grade::Relevant);
    }

    #[test]
    fn location_query_rewards_intent_city() {
        let g = relevance_grade(&user(2, 1.0), &query(QueryClass::LocationSensitive), LocId(10),
            &doc(0, 0, Some(10)), &mut rng());
        assert_eq!(g, Grade::HighlyRelevant);
    }

    #[test]
    fn location_query_rejects_wrong_city_at_full_affinity() {
        let g = relevance_grade(&user(2, 1.0), &query(QueryClass::LocationSensitive), LocId(10),
            &doc(0, 0, Some(99)), &mut rng());
        assert_eq!(g, Grade::Irrelevant);
    }

    #[test]
    fn zero_affinity_users_tolerate_wrong_city() {
        let g = relevance_grade(&user(2, 0.0), &query(QueryClass::LocationSensitive), LocId(10),
            &doc(0, 0, Some(99)), &mut rng());
        assert_eq!(g, Grade::Relevant);
    }

    #[test]
    fn global_docs_keep_topical_grade_on_location_queries() {
        let g = relevance_grade(&user(2, 1.0), &query(QueryClass::LocationSensitive), LocId(10),
            &doc(0, 0, None), &mut rng());
        assert_eq!(g, Grade::Relevant);
    }

    #[test]
    fn both_preferences_cap_at_two() {
        let g = relevance_grade(&user(0, 1.0), &query(QueryClass::ExplicitLocation), LocId(10),
            &doc(0, 0, Some(10)), &mut rng());
        assert_eq!(g, Grade::HighlyRelevant);
        assert_eq!(g.gain(), 2);
    }

    #[test]
    fn grade_helpers() {
        assert_eq!(Grade::from_level(0), Grade::Irrelevant);
        assert_eq!(Grade::from_level(1), Grade::Relevant);
        assert_eq!(Grade::from_level(7), Grade::HighlyRelevant);
        assert!(!Grade::Irrelevant.is_relevant());
        assert!(Grade::Relevant.is_relevant());
    }
}
