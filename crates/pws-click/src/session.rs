//! The session simulator: user × query template × engine → logged clicks.
//!
//! This is the stand-in for the paper's human subjects sitting in front of
//! the search middleware. Each *issue* of a query template by a user:
//!
//! 1. samples the user's per-issue intent city (home vs. secondary);
//! 2. renders the query text (explicit-location issues append the city
//!    name, the others send the bare topical terms);
//! 3. obtains a ranked result list — either from the baseline engine or
//!    from a caller-supplied (personalized) re-ranked list;
//! 4. grades every shown result against the user's latent preferences;
//! 5. simulates clicks with the configured click model;
//! 6. returns the [`Impression`] (what a real log would contain) together
//!    with the latent truth (grades + intent city) that only a simulator
//!    can expose, for evaluation.

use crate::log::{Click, Impression, ShownResult};
use crate::model::{ClickModel, PositionBiasModel};
use crate::relevance::{relevance_grade, Grade};
use crate::user::{UserId, UserPopulation};
use pws_corpus::query::{Query, QueryClass, QueryId};
use pws_corpus::Corpus;
use pws_geo::{LocId, LocationOntology};
use pws_index::{SearchEngine, SearchHit};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Results per page (the paper's setting: 10).
    pub top_k: usize,
    /// RNG seed for intent sampling, grading coins, and click simulation.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { top_k: 10, seed: 0xC11C }
    }
}

/// One issue's full outcome: the observable log entry plus latent truth.
#[derive(Debug, Clone)]
pub struct IssueOutcome {
    /// What a real search log would record.
    pub impression: Impression,
    /// The city this issue was "really" about (latent).
    pub intent_city: LocId,
    /// Latent grade of each shown result, parallel to
    /// `impression.results`.
    pub grades: Vec<Grade>,
}

/// The simulator. Borrows all the static world state; owns only its RNG and
/// click model.
pub struct SessionSimulator<'a> {
    engine: &'a SearchEngine,
    corpus: &'a Corpus,
    world: &'a LocationOntology,
    population: &'a UserPopulation,
    queries: &'a [Query],
    model: Box<dyn ClickModel + 'a>,
    rng: StdRng,
    cfg: SimConfig,
}

impl<'a> SessionSimulator<'a> {
    /// Build a simulator with the default position-bias click model.
    pub fn new(
        engine: &'a SearchEngine,
        corpus: &'a Corpus,
        world: &'a LocationOntology,
        population: &'a UserPopulation,
        queries: &'a [Query],
        cfg: SimConfig,
    ) -> Self {
        Self::with_model(
            engine,
            corpus,
            world,
            population,
            queries,
            cfg,
            Box::new(PositionBiasModel::default()),
        )
    }

    /// Build with an explicit click model.
    #[allow(clippy::too_many_arguments)]
    pub fn with_model(
        engine: &'a SearchEngine,
        corpus: &'a Corpus,
        world: &'a LocationOntology,
        population: &'a UserPopulation,
        queries: &'a [Query],
        cfg: SimConfig,
        model: Box<dyn ClickModel + 'a>,
    ) -> Self {
        SessionSimulator {
            engine,
            corpus,
            world,
            population,
            queries,
            model,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// The configured result-page size.
    pub fn top_k(&self) -> usize {
        self.cfg.top_k
    }

    /// The query workload this simulator issues from.
    pub fn queries(&self) -> &'a [Query] {
        self.queries
    }

    /// Sample the next query template for a user: with probability
    /// `user.focus` a template from one of the user's favored topics,
    /// otherwise uniform over the workload. This is the traffic model —
    /// real users concentrate their queries in a few interest areas.
    pub fn sample_query(&mut self, user: UserId) -> QueryId {
        use rand::Rng;
        let u = self.population.user(user);
        let focused: Vec<usize> = self
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| u.favored_topics.contains(&q.topic.0))
            .map(|(i, _)| i)
            .collect();
        let idx = if !focused.is_empty() && self.rng.gen_bool(u.focus.clamp(0.0, 1.0)) {
            focused[self.rng.gen_range(0..focused.len())]
        } else {
            self.rng.gen_range(0..self.queries.len())
        };
        QueryId(idx as u32)
    }

    /// The query text a given user issue sends to the engine.
    pub fn render_query(&self, query: &Query, intent_city: LocId) -> String {
        match query.class {
            QueryClass::ExplicitLocation => {
                format!("{} {}", query.text, self.world.name(intent_city))
            }
            _ => query.text.clone(),
        }
    }

    /// Issue `query` as `user` against the baseline engine.
    pub fn issue(&mut self, user: UserId, query: QueryId) -> IssueOutcome {
        let q = &self.queries[query.index()];
        let intent_city = self.population.user(user).intent_city(&mut self.rng);
        let text = self.render_query(q, intent_city);
        let hits = self.engine.search(&text, self.cfg.top_k);
        self.issue_on_hits(user, query, intent_city, &text, &hits)
    }

    /// Issue against a caller-supplied (typically re-ranked) result list.
    /// The list order is taken as the shown order; ranks are re-assigned
    /// 1-based from the slice order.
    pub fn issue_on_hits(
        &mut self,
        user: UserId,
        query: QueryId,
        intent_city: LocId,
        query_text: &str,
        hits: &[SearchHit],
    ) -> IssueOutcome {
        let q = &self.queries[query.index()];
        let u = self.population.user(user);

        let shown: Vec<ShownResult> = hits
            .iter()
            .enumerate()
            .map(|(i, h)| ShownResult {
                doc: h.doc,
                rank: i + 1,
                url: h.url.to_string(),
                title: h.title.to_string(),
                snippet: h.snippet.clone(),
            })
            .collect();

        let grades: Vec<Grade> = hits
            .iter()
            .map(|h| {
                relevance_grade(u, q, intent_city, self.corpus.doc(pws_corpus::DocId(h.doc)), &mut self.rng)
            })
            .collect();

        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        let clicks: Vec<Click> = self.model.simulate(&docs, &grades, u.noise, &mut self.rng);

        IssueOutcome {
            impression: Impression {
                user,
                query,
                query_text: query_text.to_string(),
                results: shown,
                clicks,
            },
            intent_city,
            grades,
        }
    }

    /// Sample an intent city for a user issue without running a search —
    /// used by callers that orchestrate the search themselves (the
    /// personalized engine loop).
    pub fn sample_intent_city(&mut self, user: UserId) -> LocId {
        self.population.user(user).intent_city(&mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::{UserGen, UserSpec};
    use pws_corpus::{CorpusGen, CorpusSpec, QueryGen, QuerySpec};
    use pws_geo::{WorldGen, WorldSpec};
    use pws_index::{IndexBuilder, StoredDoc};

    struct Fixture {
        world: LocationOntology,
        corpus: Corpus,
        population: UserPopulation,
        queries: Vec<Query>,
        engine: SearchEngine,
    }

    fn fixture() -> Fixture {
        let world = WorldGen::new(1).generate(&WorldSpec::small());
        let corpus = CorpusGen::new(2).generate(&CorpusSpec::small(), &world);
        let population = UserGen::new(3).generate(&UserSpec::small(), &world);
        let queries = QueryGen::new(4).generate(&QuerySpec::small());
        let mut b = IndexBuilder::new();
        for d in &corpus.docs {
            b.add(StoredDoc::new(d.id.0, &d.url, &d.title, &d.body));
        }
        let engine = b.build();
        Fixture { world, corpus, population, queries, engine }
    }

    #[test]
    fn issue_produces_consistent_impression() {
        let f = fixture();
        let mut sim = SessionSimulator::new(
            &f.engine, &f.corpus, &f.world, &f.population, &f.queries, SimConfig::default());
        let out = sim.issue(UserId(0), QueryId(0));
        assert_eq!(out.impression.user, UserId(0));
        assert_eq!(out.impression.query, QueryId(0));
        assert_eq!(out.grades.len(), out.impression.results.len());
        for (i, r) in out.impression.results.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
        }
        // Every click points at a shown result.
        for c in &out.impression.clicks {
            assert!(out.impression.results.iter().any(|r| r.doc == c.doc && r.rank == c.rank));
        }
        assert!(out.impression.results.len() <= 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let f = fixture();
        let run = || {
            let mut sim = SessionSimulator::new(
                &f.engine, &f.corpus, &f.world, &f.population, &f.queries, SimConfig::default());
            let mut outs = Vec::new();
            for u in 0..3 {
                for q in 0..3 {
                    outs.push(sim.issue(UserId(u), QueryId(q)).impression);
                }
            }
            outs
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn explicit_location_queries_carry_city_name() {
        let f = fixture();
        let mut sim = SessionSimulator::new(
            &f.engine, &f.corpus, &f.world, &f.population, &f.queries, SimConfig::default());
        let explicit: Vec<QueryId> = f
            .queries
            .iter()
            .filter(|q| q.class == QueryClass::ExplicitLocation)
            .map(|q| q.id)
            .collect();
        assert!(!explicit.is_empty(), "workload should contain explicit queries");
        for qid in explicit {
            let out = sim.issue(UserId(0), qid);
            let city_name = f.world.name(out.intent_city);
            assert!(
                out.impression.query_text.contains(city_name),
                "{} missing {}",
                out.impression.query_text,
                city_name
            );
        }
    }

    #[test]
    fn issue_on_hits_respects_given_order() {
        let f = fixture();
        let mut sim = SessionSimulator::new(
            &f.engine, &f.corpus, &f.world, &f.population, &f.queries, SimConfig::default());
        let q = &f.queries[0];
        let city = sim.sample_intent_city(UserId(1));
        let mut hits = f.engine.search(&q.text, 10);
        if hits.len() >= 2 {
            hits.reverse();
            let out = sim.issue_on_hits(UserId(1), q.id, city, &q.text, &hits);
            // Shown ranks follow the reversed slice order.
            assert_eq!(out.impression.results[0].doc, hits[0].doc);
            for (i, r) in out.impression.results.iter().enumerate() {
                assert_eq!(r.rank, i + 1);
            }
        }
    }

    #[test]
    fn sample_query_concentrates_on_favored_topics() {
        let f = fixture();
        let mut sim = SessionSimulator::new(
            &f.engine, &f.corpus, &f.world, &f.population, &f.queries, SimConfig::default());
        let user = UserId(0);
        let favored = f.population.user(user).favored_topics.clone();
        // Only meaningful if favored topics actually have templates.
        let has_templates =
            f.queries.iter().any(|q| favored.contains(&q.topic.0));
        let mut in_favored = 0;
        let n = 400;
        for _ in 0..n {
            let qid = sim.sample_query(user);
            if favored.contains(&f.queries[qid.index()].topic.0) {
                in_favored += 1;
            }
        }
        if has_templates {
            // focus ∈ [0.75, 0.9] → expect well over half in-interest.
            assert!(in_favored * 2 > n, "{in_favored}/{n} focused");
        }
    }

    #[test]
    fn grades_match_latent_preferences_statistically() {
        // Highly-relevant grades should be assigned to home-city docs on
        // location-sensitive queries more often than to wrong-city docs.
        let f = fixture();
        let mut sim = SessionSimulator::new(
            &f.engine, &f.corpus, &f.world, &f.population, &f.queries, SimConfig::default());
        let mut home_high = 0u32;
        let mut wrong_high = 0u32;
        for u in 0..f.population.len() as u32 {
            for q in 0..f.queries.len() as u32 {
                if f.queries[q as usize].class != QueryClass::LocationSensitive {
                    continue;
                }
                let out = sim.issue(UserId(u), QueryId(q));
                for (r, g) in out.impression.results.iter().zip(&out.grades) {
                    let doc = f.corpus.doc(pws_corpus::DocId(r.doc));
                    if g == &Grade::HighlyRelevant {
                        match doc.city {
                            Some(c) if c == out.intent_city => home_high += 1,
                            Some(_) => wrong_high += 1,
                            None => {}
                        }
                    }
                }
            }
        }
        assert!(home_high > 0, "no highly-relevant home-city results at all");
        assert_eq!(wrong_high, 0, "wrong-city docs must never be highly relevant");
    }
}
