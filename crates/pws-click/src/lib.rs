//! # pws-click — clickthrough substrate
//!
//! The paper collected clickthrough data from human subjects. Offline we
//! substitute a *simulated* user population whose latent preferences are
//! known, which the paper's human subjects could never give us:
//!
//! * [`user`] — the population: every simulated user has a home city, a
//!   location-affinity strength, and per-topic favorite *subtopics*;
//! * [`relevance`] — the ground-truth graded relevance (0/1/2) of a document
//!   for a `(user, query)` pair, derived from those latent preferences;
//! * [`model`] — click models turning a ranked result list plus relevance
//!   grades into clicks: position-biased examination and cascade, both with
//!   dwell-time simulation (grade-consistent dwell, so dwell-based grading
//!   recovers the latent grades with realistic noise);
//! * [`log`] — the serializable impression/click log schema every consumer
//!   (profiling, entropy, evaluation) reads;
//! * [`session`] — the simulator wiring user × query template × search
//!   engine into a stream of logged impressions.
//!
//! Everything is deterministic given the seed.

pub mod log;
pub mod model;
pub mod relevance;
pub mod session;
pub mod user;

pub use log::{Click, Impression, SearchLog, ShownResult};
pub use model::{CascadeModel, ClickModel, DbnModel, PositionBiasModel};
pub use relevance::{relevance_grade, Grade};
pub use session::{SessionSimulator, SimConfig};
pub use user::{SimUser, UserGen, UserId, UserPopulation, UserSpec};
