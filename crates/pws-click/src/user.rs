//! Simulated user population.
//!
//! Each user carries the latent state the paper's personalization layer is
//! supposed to discover:
//!
//! * a **home city** (plus a weaker secondary city) — the location
//!   preference;
//! * a **favorite subtopic per topic** — the content preference;
//! * a **location affinity** in [0, 1] — how strongly the user cares about
//!   locality for location-sensitive queries (the paper observes users
//!   differ in this, motivating per-user effectiveness weighting).

use pws_corpus::vocab::Topics;
use pws_geo::{LocId, LocationOntology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dense user identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Latent preferences of one simulated user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimUser {
    /// Dense id, equal to position in the population.
    pub id: UserId,
    /// The city this user's location-sensitive queries are "really" about.
    pub home_city: LocId,
    /// A second city the user sometimes cares about (travel, family).
    pub secondary_city: LocId,
    /// Probability that a location-sensitive query is about `home_city`
    /// rather than `secondary_city`.
    pub home_bias: f64,
    /// How strongly locality matters to this user, in [0, 1]. At 0 the user
    /// treats location-sensitive queries as content queries.
    pub loc_affinity: f64,
    /// `favorite_subtopic[t]` = the subtopic of topic `t` this user favors.
    pub favorite_subtopic: Vec<u8>,
    /// The topics this user actually searches about. Real users issue most
    /// of their queries within a handful of interest areas; concentrating
    /// traffic is what makes per-topic preference mining possible at all.
    pub favored_topics: Vec<u16>,
    /// Probability that an issued query comes from `favored_topics`
    /// (the rest of the traffic is exploratory, uniform over all topics).
    pub focus: f64,
    /// Per-interaction click noise: probability of a random irrelevant
    /// click / missed relevant click.
    pub noise: f64,
}

impl SimUser {
    /// The city a given query issue is about (sampled per issue).
    pub fn intent_city(&self, rng: &mut StdRng) -> LocId {
        if rng.gen_bool(self.home_bias) {
            self.home_city
        } else {
            self.secondary_city
        }
    }
}

/// Population-shape parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct UserSpec {
    /// Number of users.
    pub num_users: usize,
    /// Number of topics in play (must match the corpus spec).
    pub num_topics: usize,
    /// Range of `loc_affinity` across the population (min, max).
    pub loc_affinity: (f64, f64),
    /// Range of `home_bias`.
    pub home_bias: (f64, f64),
    /// Range of per-user click noise.
    pub noise: (f64, f64),
    /// Favored (interest) topics per user.
    pub favored_topics_per_user: usize,
    /// Range of per-user query focus (probability a query is in-interest).
    pub focus: (f64, f64),
}

impl UserSpec {
    /// Default experimental population: 60 users (T1).
    pub fn default_population() -> Self {
        UserSpec {
            num_users: 60,
            num_topics: 12,
            loc_affinity: (0.55, 1.0),
            home_bias: (0.75, 0.95),
            noise: (0.02, 0.10),
            favored_topics_per_user: 3,
            focus: (0.75, 0.9),
        }
    }

    /// Small population for tests.
    pub fn small() -> Self {
        UserSpec {
            num_users: 8,
            num_topics: 4,
            loc_affinity: (0.6, 1.0),
            home_bias: (0.8, 0.95),
            noise: (0.02, 0.08),
            favored_topics_per_user: 2,
            focus: (0.75, 0.9),
        }
    }
}

/// The generated population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserPopulation {
    /// All users; `users[i].id == UserId(i)`.
    pub users: Vec<SimUser>,
    /// Generation seed, recorded for reproducibility.
    pub seed: u64,
}

impl UserPopulation {
    /// Number of users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Borrow a user.
    pub fn user(&self, id: UserId) -> &SimUser {
        &self.users[id.index()]
    }

    /// Iterate users.
    pub fn iter(&self) -> impl Iterator<Item = &SimUser> {
        self.users.iter()
    }
}

/// Seeded population generator.
#[derive(Debug)]
pub struct UserGen {
    seed: u64,
}

impl UserGen {
    /// Same seed + spec + world ⇒ same population.
    pub fn new(seed: u64) -> Self {
        UserGen { seed }
    }

    /// Generate a population whose home cities are drawn from `world`.
    pub fn generate(&self, spec: &UserSpec, world: &LocationOntology) -> UserPopulation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cities: Vec<LocId> = world.cities().collect();
        assert!(cities.len() >= 2, "need at least two cities for home/secondary");
        let mut users = Vec::with_capacity(spec.num_users);
        for i in 0..spec.num_users {
            let home_city = cities[rng.gen_range(0..cities.len())];
            // Secondary city differs from home.
            let secondary_city = loop {
                let c = cities[rng.gen_range(0..cities.len())];
                if c != home_city {
                    break c;
                }
            };
            let favorite_subtopic =
                (0..spec.num_topics).map(|_| rng.gen_range(0..Topics::SUBTOPICS)).collect();
            // Distinct favored topics, without replacement.
            let mut pool: Vec<u16> = (0..spec.num_topics as u16).collect();
            let mut favored_topics = Vec::new();
            for _ in 0..spec.favored_topics_per_user.min(pool.len()) {
                let k = rng.gen_range(0..pool.len());
                favored_topics.push(pool.swap_remove(k));
            }
            favored_topics.sort_unstable();
            users.push(SimUser {
                id: UserId(i as u32),
                home_city,
                secondary_city,
                home_bias: rng.gen_range(spec.home_bias.0..=spec.home_bias.1),
                loc_affinity: rng.gen_range(spec.loc_affinity.0..=spec.loc_affinity.1),
                favorite_subtopic,
                favored_topics,
                focus: rng.gen_range(spec.focus.0..=spec.focus.1),
                noise: rng.gen_range(spec.noise.0..=spec.noise.1),
            });
        }
        UserPopulation { users, seed: self.seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_geo::{WorldGen, WorldSpec};

    fn world() -> LocationOntology {
        WorldGen::new(1).generate(&WorldSpec::small())
    }

    #[test]
    fn deterministic() {
        let w = world();
        let a = UserGen::new(3).generate(&UserSpec::small(), &w);
        let b = UserGen::new(3).generate(&UserSpec::small(), &w);
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.home_city, y.home_city);
            assert_eq!(x.favorite_subtopic, y.favorite_subtopic);
        }
    }

    #[test]
    fn ids_dense() {
        let w = world();
        let p = UserGen::new(3).generate(&UserSpec::small(), &w);
        for (i, u) in p.users.iter().enumerate() {
            assert_eq!(u.id, UserId(i as u32));
        }
        assert_eq!(p.len(), UserSpec::small().num_users);
    }

    #[test]
    fn secondary_city_differs_from_home() {
        let w = world();
        let p = UserGen::new(3).generate(&UserSpec::small(), &w);
        for u in p.iter() {
            assert_ne!(u.home_city, u.secondary_city);
        }
    }

    #[test]
    fn parameters_within_spec_ranges() {
        let w = world();
        let spec = UserSpec::small();
        let p = UserGen::new(9).generate(&spec, &w);
        for u in p.iter() {
            assert!(u.loc_affinity >= spec.loc_affinity.0 && u.loc_affinity <= spec.loc_affinity.1);
            assert!(u.home_bias >= spec.home_bias.0 && u.home_bias <= spec.home_bias.1);
            assert!(u.noise >= spec.noise.0 && u.noise <= spec.noise.1);
            assert_eq!(u.favorite_subtopic.len(), spec.num_topics);
            for &s in &u.favorite_subtopic {
                assert!(s < Topics::SUBTOPICS);
            }
        }
    }

    #[test]
    fn intent_city_is_home_or_secondary() {
        let w = world();
        let p = UserGen::new(3).generate(&UserSpec::small(), &w);
        let u = p.user(UserId(0));
        let mut rng = StdRng::seed_from_u64(0);
        let mut saw_home = false;
        for _ in 0..200 {
            let c = u.intent_city(&mut rng);
            assert!(c == u.home_city || c == u.secondary_city);
            saw_home |= c == u.home_city;
        }
        assert!(saw_home, "home city should dominate");
    }

    #[test]
    fn favored_topics_are_distinct_and_in_range() {
        let w = world();
        let spec = UserSpec::small();
        let p = UserGen::new(6).generate(&spec, &w);
        for u in p.iter() {
            assert_eq!(u.favored_topics.len(), spec.favored_topics_per_user);
            let mut t = u.favored_topics.clone();
            t.dedup();
            assert_eq!(t.len(), u.favored_topics.len(), "dup favored topic");
            for &topic in &u.favored_topics {
                assert!((topic as usize) < spec.num_topics);
            }
            assert!(u.focus >= spec.focus.0 && u.focus <= spec.focus.1);
        }
    }

    #[test]
    fn favored_topics_capped_by_topic_count() {
        let w = world();
        let spec = UserSpec { favored_topics_per_user: 100, ..UserSpec::small() };
        let p = UserGen::new(6).generate(&spec, &w);
        assert_eq!(p.user(UserId(0)).favored_topics.len(), spec.num_topics);
    }

    #[test]
    fn population_users_spread_over_cities() {
        let w = world();
        let spec = UserSpec { num_users: 50, ..UserSpec::small() };
        let p = UserGen::new(4).generate(&spec, &w);
        let distinct: std::collections::HashSet<_> = p.iter().map(|u| u.home_city).collect();
        assert!(distinct.len() > 3, "users clustered in {} cities", distinct.len());
    }
}
