//! Clickthrough log schema.
//!
//! The interchange format between the simulator and every consumer
//! (profiling, entropy analysis, RankSVM training, evaluation). Serialized
//! as JSON lines by the experiment harness.

use crate::user::UserId;
use pws_corpus::query::QueryId;
use serde::{Deserialize, Serialize};

/// One result as shown to the user.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ShownResult {
    /// Document id in the engine.
    pub doc: u32,
    /// 1-based rank at which it was shown.
    pub rank: usize,
    /// Result URL.
    pub url: String,
    /// Result title.
    pub title: String,
    /// Query-biased snippet shown under the title.
    pub snippet: String,
}

/// One click within an impression.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq)]
pub struct Click {
    /// Clicked document.
    pub doc: u32,
    /// Rank it was shown at (1-based).
    pub rank: usize,
    /// Simulated dwell time in abstract time units. By the conventional
    /// dwell grading: `< 50` ⇒ unsatisfied, `50..400` ⇒ satisfied,
    /// `>= 400` ⇒ highly satisfied.
    pub dwell: u32,
}

impl Click {
    /// Dwell-derived satisfaction grade (0/1/2), the observable proxy for
    /// the latent relevance grade.
    pub fn dwell_grade(&self) -> u32 {
        if self.dwell >= 400 {
            2
        } else if self.dwell >= 50 {
            1
        } else {
            0
        }
    }
}

/// One query issue: what was asked, what was shown, what was clicked.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Impression {
    /// The issuing user.
    pub user: UserId,
    /// Workload template this issue instantiated.
    pub query: QueryId,
    /// The exact query string sent to the engine (may include a city name
    /// for explicit-location issues).
    pub query_text: String,
    /// Results as shown, rank ascending.
    pub results: Vec<ShownResult>,
    /// Clicks, in click order.
    pub clicks: Vec<Click>,
}

impl Impression {
    /// Was `doc` clicked in this impression?
    pub fn clicked(&self, doc: u32) -> bool {
        self.clicks.iter().any(|c| c.doc == doc)
    }

    /// Rank of the lowest-ranked (i.e. largest rank value) click, if any.
    pub fn deepest_click_rank(&self) -> Option<usize> {
        self.clicks.iter().map(|c| c.rank).max()
    }

    /// Results at ranks above the deepest click that were *not* clicked —
    /// Joachims' "skipped" documents, the negative signal for preference
    /// pair mining.
    pub fn skipped(&self) -> Vec<&ShownResult> {
        let Some(deepest) = self.deepest_click_rank() else {
            return Vec::new();
        };
        self.results
            .iter()
            .filter(|r| r.rank < deepest && !self.clicked(r.doc))
            .collect()
    }
}

/// A full log: a sequence of impressions in simulation order.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct SearchLog {
    /// Impressions in chronological order.
    pub impressions: Vec<Impression>,
}

impl SearchLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of impressions.
    pub fn len(&self) -> usize {
        self.impressions.len()
    }

    /// True when no impressions were recorded.
    pub fn is_empty(&self) -> bool {
        self.impressions.is_empty()
    }

    /// Append one impression.
    pub fn push(&mut self, imp: Impression) {
        self.impressions.push(imp);
    }

    /// Impressions of one user, in order.
    pub fn for_user(&self, user: UserId) -> impl Iterator<Item = &Impression> {
        self.impressions.iter().filter(move |i| i.user == user)
    }

    /// Impressions of one query template, in order.
    pub fn for_query(&self, query: QueryId) -> impl Iterator<Item = &Impression> {
        self.impressions.iter().filter(move |i| i.query == query)
    }

    /// Total number of clicks across all impressions.
    pub fn total_clicks(&self) -> usize {
        self.impressions.iter().map(|i| i.clicks.len()).sum()
    }

    /// Click-through rate of rank 1: fraction of impressions whose rank-1
    /// result was clicked.
    pub fn ctr_at_1(&self) -> f64 {
        if self.impressions.is_empty() {
            return 0.0;
        }
        let hits = self
            .impressions
            .iter()
            .filter(|i| i.clicks.iter().any(|c| c.rank == 1))
            .count();
        hits as f64 / self.impressions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shown(doc: u32, rank: usize) -> ShownResult {
        ShownResult { doc, rank, url: format!("u{doc}"), title: "t".into(), snippet: "s".into() }
    }

    fn imp(user: u32, query: u32, clicks: Vec<(u32, usize, u32)>) -> Impression {
        Impression {
            user: UserId(user),
            query: QueryId(query),
            query_text: "q".into(),
            results: (0..5).map(|i| shown(i, i as usize + 1)).collect(),
            clicks: clicks.into_iter().map(|(doc, rank, dwell)| Click { doc, rank, dwell }).collect(),
        }
    }

    #[test]
    fn dwell_grades() {
        assert_eq!(Click { doc: 0, rank: 1, dwell: 10 }.dwell_grade(), 0);
        assert_eq!(Click { doc: 0, rank: 1, dwell: 50 }.dwell_grade(), 1);
        assert_eq!(Click { doc: 0, rank: 1, dwell: 399 }.dwell_grade(), 1);
        assert_eq!(Click { doc: 0, rank: 1, dwell: 400 }.dwell_grade(), 2);
    }

    #[test]
    fn clicked_lookup() {
        let i = imp(0, 0, vec![(2, 3, 100)]);
        assert!(i.clicked(2));
        assert!(!i.clicked(0));
    }

    #[test]
    fn skipped_is_unclicked_above_deepest_click() {
        let i = imp(0, 0, vec![(2, 3, 100), (0, 1, 60)]);
        let skipped: Vec<u32> = i.skipped().iter().map(|r| r.doc).collect();
        // Deepest click at rank 3; rank 1 clicked, rank 2 skipped.
        assert_eq!(skipped, vec![1]);
    }

    #[test]
    fn no_clicks_means_no_skips() {
        let i = imp(0, 0, vec![]);
        assert!(i.skipped().is_empty());
        assert_eq!(i.deepest_click_rank(), None);
    }

    #[test]
    fn log_filters_and_stats() {
        let mut log = SearchLog::new();
        log.push(imp(0, 0, vec![(0, 1, 500)]));
        log.push(imp(0, 1, vec![]));
        log.push(imp(1, 0, vec![(3, 4, 30)]));
        assert_eq!(log.len(), 3);
        assert_eq!(log.for_user(UserId(0)).count(), 2);
        assert_eq!(log.for_query(QueryId(0)).count(), 2);
        assert_eq!(log.total_clicks(), 2);
        assert!((log.ctr_at_1() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let mut log = SearchLog::new();
        log.push(imp(0, 0, vec![(0, 1, 500)]));
        let json = serde_json::to_string(&log).unwrap();
        let back: SearchLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
