//! Property tests for the clickthrough substrate: click-model laws and
//! log-schema invariants under arbitrary grade patterns.

use proptest::prelude::*;
use pws_click::relevance::Grade;
use pws_click::{CascadeModel, Click, ClickModel, DbnModel, Impression, PositionBiasModel, ShownResult, UserId};
use pws_corpus::query::QueryId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grades() -> impl Strategy<Value = Vec<Grade>> {
    prop::collection::vec((0u32..3).prop_map(Grade::from_level), 0..10)
}

fn check_clicks(clicks: &[Click], n: usize) -> Result<(), TestCaseError> {
    let mut seen = std::collections::HashSet::new();
    for c in clicks {
        prop_assert!(c.rank >= 1 && c.rank <= n, "rank {} out of page", c.rank);
        prop_assert_eq!(c.doc as usize, c.rank - 1, "doc/rank mismatch in fixture");
        prop_assert!(seen.insert(c.rank), "duplicate click at rank {}", c.rank);
        prop_assert!(c.dwell >= 1);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three click models produce well-formed clicks: ranks within the
    /// page, no duplicates, positive dwell, and determinism per seed.
    #[test]
    fn click_models_produce_valid_clicks(g in grades(), seed in 0u64..500, noise in 0.0f64..0.3) {
        let docs: Vec<u32> = (0..g.len() as u32).collect();
        let models: Vec<Box<dyn ClickModel>> = vec![
            Box::new(PositionBiasModel::default()),
            Box::new(CascadeModel::default()),
            Box::new(DbnModel::default()),
        ];
        for m in &models {
            let a = m.simulate(&docs, &g, noise, &mut StdRng::seed_from_u64(seed));
            let b = m.simulate(&docs, &g, noise, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(&a, &b, "non-deterministic for same seed");
            check_clicks(&a, g.len())?;
        }
    }

    /// Cascade and DBN click ranks are strictly ascending (top-down scan).
    #[test]
    fn sequential_models_scan_top_down(g in grades(), seed in 0u64..500) {
        let docs: Vec<u32> = (0..g.len() as u32).collect();
        for m in [&CascadeModel::default() as &dyn ClickModel, &DbnModel::default()] {
            let clicks = m.simulate(&docs, &g, 0.05, &mut StdRng::seed_from_u64(seed));
            for w in clicks.windows(2) {
                prop_assert!(w[0].rank < w[1].rank);
            }
        }
    }

    /// Impression invariants: skipped ⊆ results, skipped ∩ clicked = ∅,
    /// and every skipped rank is above the deepest click.
    #[test]
    fn skipped_set_laws(g in grades(), seed in 0u64..500) {
        let docs: Vec<u32> = (0..g.len() as u32).collect();
        let m = PositionBiasModel::default();
        let clicks = m.simulate(&docs, &g, 0.05, &mut StdRng::seed_from_u64(seed));
        let imp = Impression {
            user: UserId(0),
            query: QueryId(0),
            query_text: "q".into(),
            results: docs
                .iter()
                .map(|&d| ShownResult {
                    doc: d,
                    rank: d as usize + 1,
                    url: format!("u{d}"),
                    title: "t".into(),
                    snippet: "s".into(),
                })
                .collect(),
            clicks,
        };
        let deepest = imp.deepest_click_rank();
        for s in imp.skipped() {
            prop_assert!(!imp.clicked(s.doc));
            prop_assert!(s.rank < deepest.unwrap());
        }
        // ctr_at_1 is 0 or 1 for a single impression.
        let mut log = pws_click::SearchLog::new();
        log.push(imp);
        let ctr = log.ctr_at_1();
        prop_assert!(ctr == 0.0 || ctr == 1.0);
    }

    /// Dwell grading boundaries are exact.
    #[test]
    fn dwell_grade_boundaries(dwell in 0u32..2000) {
        let c = Click { doc: 0, rank: 1, dwell };
        let g = c.dwell_grade();
        match dwell {
            0..=49 => prop_assert_eq!(g, 0),
            50..=399 => prop_assert_eq!(g, 1),
            _ => prop_assert_eq!(g, 2),
        }
    }
}
