//! Personalization effectiveness and the content/location blend weight.
//!
//! High click entropy along a dimension ⇒ users disagree along that
//! dimension ⇒ personalizing that dimension can help. Effectiveness is the
//! normalized entropy, shrunk towards 0 when evidence is thin (few clicks):
//!
//! ```text
//! e = Ĥ · clicks / (clicks + k)
//! ```
//!
//! with `k` a smoothing pseudo-count. The blend weight
//! `β = e_loc / (e_content + e_loc)` is the *location share* of the
//! personalization signal; the engine scores results with
//! `(1−β)·content_pref + β·location_pref`.

use crate::stats::QueryStats;
use serde::{Deserialize, Serialize};

/// Effectiveness estimation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectivenessConfig {
    /// Pseudo-count `k` in the click-evidence shrinkage.
    pub evidence_k: f64,
    /// Minimum total effectiveness below which personalization is skipped
    /// entirely for the query (the "to personalize or not" switch).
    pub min_total: f64,
}

impl Default for EffectivenessConfig {
    fn default() -> Self {
        EffectivenessConfig { evidence_k: 5.0, min_total: 0.05 }
    }
}

/// Per-query effectiveness of the two personalization dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Effectiveness {
    /// Content-personalization effectiveness in [0, 1].
    pub content: f64,
    /// Location-personalization effectiveness in [0, 1].
    pub location: f64,
}

impl Effectiveness {
    /// Estimate from accumulated click statistics.
    pub fn from_stats(stats: &QueryStats, cfg: &EffectivenessConfig) -> Self {
        let clicks = stats.clicks() as f64;
        let evidence = clicks / (clicks + cfg.evidence_k);
        Effectiveness {
            content: stats.normalized_content_entropy() * evidence,
            location: stats.normalized_location_entropy() * evidence,
        }
    }

    /// A neutral prior: both dimensions equally (and weakly) effective.
    pub fn neutral() -> Self {
        Effectiveness { content: 0.5, location: 0.5 }
    }

    /// Location share `β ∈ [0, 1]` of the personalization blend.
    /// When neither dimension shows effectiveness, fall back to 0.5.
    ///
    /// The raw share `e_l / (e_c + e_l)` is *sharpened* with
    /// `β²/(β² + (1−β)²)`: in the combined blend each dimension only gets
    /// half the weight it has in its specialized mode, so a query whose
    /// clicks clearly favour one dimension must allocate decisively to it,
    /// or the combined method is strictly weaker than the better
    /// single-dimension method on every query.
    pub fn beta(&self) -> f64 {
        let total = self.content + self.location;
        if total <= 0.0 {
            return 0.5;
        }
        let raw = (self.location / total).clamp(0.0, 1.0);
        let num = raw * raw;
        (num / (num + (1.0 - raw) * (1.0 - raw))).clamp(0.0, 1.0)
    }

    /// Should this query be personalized at all?
    pub fn should_personalize(&self, cfg: &EffectivenessConfig) -> bool {
        self.content + self.location >= cfg.min_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_is_balanced() {
        let e = Effectiveness::neutral();
        assert_eq!(e.beta(), 0.5);
        assert!(e.should_personalize(&EffectivenessConfig::default()));
    }

    #[test]
    fn beta_reflects_dominant_dimension() {
        let loc_heavy = Effectiveness { content: 0.1, location: 0.9 };
        assert!(loc_heavy.beta() > 0.8);
        let content_heavy = Effectiveness { content: 0.9, location: 0.1 };
        assert!(content_heavy.beta() < 0.2);
    }

    #[test]
    fn zero_effectiveness_defaults_beta_half_and_skips() {
        let e = Effectiveness { content: 0.0, location: 0.0 };
        assert_eq!(e.beta(), 0.5);
        assert!(!e.should_personalize(&EffectivenessConfig::default()));
    }

    #[test]
    fn from_stats_shrinks_with_little_evidence() {
        // Hand-build stats via observe is exercised in stats tests; here we
        // check the shrinkage arithmetic through a fresh (empty) stats.
        let stats = QueryStats::new();
        let e = Effectiveness::from_stats(&stats, &EffectivenessConfig::default());
        assert_eq!(e.content, 0.0);
        assert_eq!(e.location, 0.0);
    }

    #[test]
    fn beta_always_in_unit_interval() {
        for (c, l) in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (0.3, 0.7), (1.0, 1.0)] {
            let b = Effectiveness { content: c, location: l }.beta();
            assert!((0.0..=1.0).contains(&b), "beta({c},{l}) = {b}");
        }
    }
}
