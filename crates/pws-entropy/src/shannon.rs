//! Entropy primitives.

/// Shannon entropy (base 2) of a count/weight distribution.
///
/// Non-positive entries are ignored; the distribution is normalized
/// internally. Returns 0 for empty or single-support distributions.
///
/// The result is **permutation-invariant at the bit level**: entries are
/// sorted before accumulating, so the same multiset of counts always
/// yields the same float no matter what order the caller's container
/// iterates in. Callers routinely pass `HashMap::values()`, whose order
/// varies per map instance; without the sort, two logically identical
/// distributions could differ in the last ulp — enough to break
/// byte-identical replay between the serial and sharded engines.
///
/// ```
/// use pws_entropy::entropy;
/// assert_eq!(entropy(&[1.0, 1.0]), 1.0);        // uniform over 2 → 1 bit
/// assert_eq!(entropy(&[5.0]), 0.0);             // concentrated → 0 bits
/// assert!(entropy(&[1.0, 1.0, 1.0, 1.0]) > entropy(&[10.0, 1.0, 1.0, 1.0]));
/// ```
pub fn entropy(counts: &[f64]) -> f64 {
    let mut pos: Vec<f64> = counts.iter().copied().filter(|&c| c > 0.0).collect();
    pos.sort_by(f64::total_cmp);
    let total: f64 = pos.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in &pos {
        let p = c / total;
        h -= p * p.log2();
    }
    // Guard tiny negative float residue.
    h.max(0.0)
}

/// Entropy normalized to [0, 1] by the maximum possible for the support
/// size (`log2 k` for `k` positive entries). A distribution with 0 or 1
/// positive entries has normalized entropy 0.
pub fn normalized_entropy(counts: &[f64]) -> f64 {
    let k = counts.iter().filter(|&&c| c > 0.0).count();
    if k <= 1 {
        return 0.0;
    }
    let h = entropy(counts);
    (h / (k as f64).log2()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_zero_distributions() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0.0, 0.0]), 0.0);
        assert_eq!(normalized_entropy(&[]), 0.0);
    }

    #[test]
    fn uniform_maximizes() {
        let u = entropy(&[1.0; 8]);
        assert!((u - 3.0).abs() < 1e-12);
        assert!((normalized_entropy(&[1.0; 8]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_lowers_entropy() {
        assert!(entropy(&[9.0, 1.0]) < entropy(&[5.0, 5.0]));
        assert!(normalized_entropy(&[9.0, 1.0]) < 1.0);
    }

    #[test]
    fn negative_entries_ignored() {
        assert_eq!(entropy(&[-3.0, 4.0]), 0.0);
        assert_eq!(entropy(&[-1.0, 2.0, 2.0]), 1.0);
    }

    #[test]
    fn scale_invariance() {
        let a = entropy(&[1.0, 2.0, 3.0]);
        let b = entropy(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn entropy_bounds(counts in proptest::collection::vec(0.0f64..100.0, 0..30)) {
            let h = entropy(&counts);
            let k = counts.iter().filter(|&&c| c > 0.0).count();
            prop_assert!(h >= 0.0);
            if k > 0 {
                prop_assert!(h <= (k as f64).log2() + 1e-9);
            }
            let nh = normalized_entropy(&counts);
            prop_assert!((0.0..=1.0).contains(&nh));
        }
    }
}
