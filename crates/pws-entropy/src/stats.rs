//! Per-query click-distribution accumulator.
//!
//! Collects, across all users and impressions of one query template, how
//! clicks distribute over URLs, content concepts, and location concepts.
//! Entropies of these distributions feed the effectiveness estimates.

use pws_click::Impression;
use pws_concepts::QueryConceptOntology;
use pws_geo::LocId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Click distributions of one query template.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct QueryStats {
    /// Clicks per URL.
    url_clicks: HashMap<String, f64>,
    /// Clicks per content-concept term.
    concept_clicks: HashMap<String, f64>,
    /// Clicks per location concept.
    location_clicks: HashMap<LocId, f64>,
    /// Impressions folded in.
    impressions: u64,
    /// Total clicks folded in.
    clicks: u64,
}

impl QueryStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Impressions observed.
    pub fn impressions(&self) -> u64 {
        self.impressions
    }

    /// Clicks observed.
    pub fn clicks(&self) -> u64 {
        self.clicks
    }

    /// All `(url, click mass)` entries in ascending URL order — the
    /// canonical view used by persistence (`pws-store`).
    pub fn url_click_entries(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> =
            self.url_clicks.iter().map(|(u, n)| (u.clone(), *n)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All `(term, click mass)` entries in ascending term order.
    pub fn concept_click_entries(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> =
            self.concept_clicks.iter().map(|(t, n)| (t.clone(), *n)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// All `(loc, click mass)` entries in ascending id order.
    pub fn location_click_entries(&self) -> Vec<(LocId, f64)> {
        let mut v: Vec<(LocId, f64)> =
            self.location_clicks.iter().map(|(l, n)| (*l, *n)).collect();
        v.sort_by_key(|(l, _)| *l);
        v
    }

    /// Rebuild an accumulator from its entry lists and counters — the
    /// inverse of the `*_entries` views, used when a stored record is
    /// faulted back in. Duplicate keys sum.
    pub fn from_parts(
        url_entries: Vec<(String, f64)>,
        concept_entries: Vec<(String, f64)>,
        location_entries: Vec<(LocId, f64)>,
        impressions: u64,
        clicks: u64,
    ) -> Self {
        let mut url_clicks = HashMap::with_capacity(url_entries.len());
        for (u, n) in url_entries {
            *url_clicks.entry(u).or_insert(0.0) += n;
        }
        let mut concept_clicks = HashMap::with_capacity(concept_entries.len());
        for (t, n) in concept_entries {
            *concept_clicks.entry(t).or_insert(0.0) += n;
        }
        let mut location_clicks = HashMap::with_capacity(location_entries.len());
        for (l, n) in location_entries {
            *location_clicks.entry(l).or_insert(0.0) += n;
        }
        QueryStats { url_clicks, concept_clicks, location_clicks, impressions, clicks }
    }

    /// Fold one impression (with the concept ontology extracted from its
    /// snippets) into the distributions.
    pub fn observe(&mut self, onto: &QueryConceptOntology, imp: &Impression) {
        for click in &imp.clicks {
            let idx = click.rank - 1;
            if let Some(shown) = imp.results.iter().find(|r| r.rank == click.rank) {
                *self.url_clicks.entry(shown.url.clone()).or_insert(0.0) += 1.0;
            }
            if let Some(concepts) = onto.content_by_snippet.get(idx) {
                for &ci in concepts {
                    *self
                        .concept_clicks
                        .entry(onto.content[ci].term.clone())
                        .or_insert(0.0) += 1.0;
                }
            }
            if let Some(locs) = onto.locations_by_snippet.get(idx) {
                for &li in locs {
                    *self.location_clicks.entry(onto.locations[li].loc).or_insert(0.0) += 1.0;
                }
            }
            self.clicks += 1;
        }
        self.impressions += 1;
    }

    /// Fold another accumulator into this one (counts and click masses
    /// add). Lets per-user shards collect stats independently and combine
    /// afterwards; merging shard A then B equals observing A's impressions
    /// then B's, because every field is a sum.
    pub fn merge(&mut self, other: &QueryStats) {
        for (url, n) in &other.url_clicks {
            *self.url_clicks.entry(url.clone()).or_insert(0.0) += n;
        }
        for (term, n) in &other.concept_clicks {
            *self.concept_clicks.entry(term.clone()).or_insert(0.0) += n;
        }
        for (loc, n) in &other.location_clicks {
            *self.location_clicks.entry(*loc).or_insert(0.0) += n;
        }
        self.impressions += other.impressions;
        self.clicks += other.clicks;
    }

    /// Click entropy over URLs (bits).
    pub fn click_entropy(&self) -> f64 {
        crate::shannon::entropy(&self.url_clicks.values().copied().collect::<Vec<_>>())
    }

    /// Click entropy over content concepts (bits).
    pub fn content_entropy(&self) -> f64 {
        crate::shannon::entropy(&self.concept_clicks.values().copied().collect::<Vec<_>>())
    }

    /// Click entropy over location concepts (bits).
    pub fn location_entropy(&self) -> f64 {
        crate::shannon::entropy(&self.location_clicks.values().copied().collect::<Vec<_>>())
    }

    /// Normalized (unit-interval) variants.
    pub fn normalized_content_entropy(&self) -> f64 {
        crate::shannon::normalized_entropy(
            &self.concept_clicks.values().copied().collect::<Vec<_>>(),
        )
    }

    /// Normalized location-click entropy.
    pub fn normalized_location_entropy(&self) -> f64 {
        crate::shannon::normalized_entropy(
            &self.location_clicks.values().copied().collect::<Vec<_>>(),
        )
    }

    /// Number of distinct clicked locations.
    pub fn distinct_locations(&self) -> usize {
        self.location_clicks.len()
    }

    /// Number of distinct clicked content concepts.
    pub fn distinct_concepts(&self) -> usize {
        self.concept_clicks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_click::{Click, ShownResult, UserId};
    use pws_concepts::{ConceptConfig, LocationConceptConfig};
    use pws_corpus::query::QueryId;
    use pws_geo::{LocationMatcher, LocationOntology};

    fn world() -> LocationOntology {
        let mut o = LocationOntology::new();
        let r = o.add(LocId::WORLD, "westland", vec![]);
        let c = o.add(r, "ardonia", vec![]);
        let s = o.add(c, "vale", vec![]);
        o.add(s, "alden", vec![]);
        o.add(s, "lakemoor", vec![]);
        o
    }

    fn onto(snippets: &[&str]) -> QueryConceptOntology {
        let w = world();
        let m = LocationMatcher::build(&w);
        let snips: Vec<String> = snippets.iter().map(|s| s.to_string()).collect();
        QueryConceptOntology::extract(
            "restaurant",
            &snips,
            &m,
            &w,
            &ConceptConfig { min_support: 0.0, min_snippet_freq: 1, bigrams: false, max_concepts: 50 },
            &LocationConceptConfig { min_support: 0.0, rollup: false, ..Default::default() },
        )
    }

    fn imp(snippets: &[&str], clicked_ranks: &[usize]) -> Impression {
        Impression {
            user: UserId(0),
            query: QueryId(0),
            query_text: "restaurant".into(),
            results: snippets
                .iter()
                .enumerate()
                .map(|(i, s)| ShownResult {
                    doc: i as u32,
                    rank: i + 1,
                    url: format!("u{i}"),
                    title: "t".into(),
                    snippet: s.to_string(),
                })
                .collect(),
            clicks: clicked_ranks
                .iter()
                .map(|&r| Click { doc: (r - 1) as u32, rank: r, dwell: 100 })
                .collect(),
        }
    }

    #[test]
    fn merge_equals_sequential_observe() {
        let snips = ["food in alden", "food in lakemoor", "nothing here"];
        let o = onto(&snips);
        // One accumulator observing everything…
        let mut all = QueryStats::new();
        all.observe(&o, &imp(&snips, &[1, 2]));
        all.observe(&o, &imp(&snips, &[1]));
        // …vs two shards merged.
        let (mut a, mut b) = (QueryStats::new(), QueryStats::new());
        a.observe(&o, &imp(&snips, &[1, 2]));
        b.observe(&o, &imp(&snips, &[1]));
        a.merge(&b);
        assert_eq!(a.impressions(), all.impressions());
        assert_eq!(a.clicks(), all.clicks());
        // The entropy primitive sorts before accumulating, so equal click
        // masses give *bit-identical* entropies regardless of how either
        // map happens to iterate.
        assert_eq!(a.click_entropy(), all.click_entropy());
        assert_eq!(a.content_entropy(), all.content_entropy());
        assert_eq!(a.location_entropy(), all.location_entropy());
        assert_eq!(a.distinct_locations(), all.distinct_locations());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let snips = ["food in alden"];
        let o = onto(&snips);
        let mut s = QueryStats::new();
        s.observe(&o, &imp(&snips, &[1]));
        let before = (s.impressions(), s.clicks(), s.click_entropy());
        s.merge(&QueryStats::new());
        assert_eq!(before, (s.impressions(), s.clicks(), s.click_entropy()));
    }

    #[test]
    fn empty_stats_zero_entropies() {
        let s = QueryStats::new();
        assert_eq!(s.click_entropy(), 0.0);
        assert_eq!(s.content_entropy(), 0.0);
        assert_eq!(s.location_entropy(), 0.0);
        assert_eq!(s.impressions(), 0);
    }

    #[test]
    fn concentrated_clicks_have_zero_url_entropy() {
        let snippets = ["seafood alden", "sushi lakemoor"];
        let o = onto(&snippets);
        let mut s = QueryStats::new();
        for _ in 0..5 {
            s.observe(&o, &imp(&snippets, &[1]));
        }
        assert_eq!(s.click_entropy(), 0.0);
        assert_eq!(s.impressions(), 5);
        assert_eq!(s.clicks(), 5);
    }

    #[test]
    fn diverse_clicks_raise_entropies() {
        let snippets = ["seafood alden", "sushi lakemoor"];
        let o = onto(&snippets);
        let mut diverse = QueryStats::new();
        diverse.observe(&o, &imp(&snippets, &[1]));
        diverse.observe(&o, &imp(&snippets, &[2]));
        assert!(diverse.click_entropy() > 0.0);
        assert!(diverse.location_entropy() > 0.0);
        assert_eq!(diverse.distinct_locations(), 2);
        assert!(diverse.distinct_concepts() >= 2);
    }

    #[test]
    fn location_entropy_tracks_location_spread_only() {
        // Same city in both snippets, different content.
        let snippets = ["seafood alden", "sushi alden"];
        let o = onto(&snippets);
        let mut s = QueryStats::new();
        s.observe(&o, &imp(&snippets, &[1]));
        s.observe(&o, &imp(&snippets, &[2]));
        assert_eq!(s.location_entropy(), 0.0, "one location only");
        assert!(s.content_entropy() > 0.0, "content differs");
    }

    #[test]
    fn normalized_entropies_in_unit_range() {
        let snippets = ["seafood alden", "sushi lakemoor", "steak alden"];
        let o = onto(&snippets);
        let mut s = QueryStats::new();
        s.observe(&o, &imp(&snippets, &[1, 2, 3]));
        for v in [s.normalized_content_entropy(), s.normalized_location_entropy()] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
