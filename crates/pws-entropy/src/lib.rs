//! # pws-entropy — when (and how) to personalize
//!
//! The paper's second contribution: not every query benefits equally from
//! each personalization dimension. Queries whose clicks concentrate on one
//! interpretation need no personalization; queries whose clicks spread over
//! many content concepts benefit from *content* personalization; queries
//! whose clicks spread over many locations benefit from *location*
//! personalization.
//!
//! * [`shannon`] — entropy primitives (Shannon entropy over count
//!   distributions, normalized variants);
//! * [`stats::QueryStats`] — per-query accumulator of click distributions
//!   over URLs, content concepts, and location concepts;
//! * [`effectiveness`] — maps those entropies to *personalization
//!   effectiveness* scores in [0, 1] and to the content/location blend
//!   weight `β` the engine uses when combining the two preference scores.

pub mod effectiveness;
pub mod shannon;
pub mod stats;

pub use effectiveness::{Effectiveness, EffectivenessConfig};
pub use shannon::{entropy, normalized_entropy};
pub use stats::QueryStats;
