//! Derive macros for the vendored `serde` stub.
//!
//! Supports exactly the shapes this workspace serializes:
//!
//! * structs with named fields,
//! * tuple structs (single-field newtypes serialize transparently,
//!   wider ones as arrays),
//! * enums whose variants are all unit variants (serialized as the
//!   variant-name string, as `serde_json` does for C-like enums).
//!
//! Generics, data-carrying enum variants, and `#[serde(...)]`
//! attributes are intentionally unsupported and fail loudly at compile
//! time. The macros parse the item token stream directly (no `syn`) and
//! emit the impl as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` unnamed fields.
    TupleStruct { name: String, arity: usize },
    /// Enum with unit variants only.
    UnitEnum { name: String, variants: Vec<String> },
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip attributes (`#[...]`, including doc comments) and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde derive stub: generic type `{name}` is unsupported");
        }
    }

    match (kind.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::Struct { name, fields: parse_named_fields(g.stream()) }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Item::UnitEnum { name: name.clone(), variants: parse_unit_variants(&name, g.stream()) }
        }
        (k, other) => panic!("serde derive stub: unsupported item `{k}` body {other:?}"),
    }
}

/// Field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde derive: expected field name, got {tok:?}");
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to the next top-level comma. Angle brackets
        // are punctuation (not groups), so track their depth explicitly.
        let mut angle = 0i32;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct body (trailing comma tolerated).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut in_segment = false;
    let mut angle = 0i32;
    for t in body {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_segment {
            in_segment = true;
            count += 1;
        }
    }
    count
}

/// Variant names of a unit-variant-only enum body.
fn parse_unit_variants(name: &str, body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(var) = tok else {
            panic!("serde derive: expected variant name in `{name}`, got {tok:?}");
        };
        variants.push(var.to_string());
        match toks.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Group(_)) => panic!(
                "serde derive stub: enum `{name}` has a data-carrying variant, \
                 only unit variants are supported"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Skip an explicit discriminant.
                for t in toks.by_ref() {
                    if matches!(&t, TokenTree::Punct(q) if q.as_char() == ',') {
                        break;
                    }
                }
            }
            other => panic!("serde derive: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join("")
            ));
        }
        Item::TupleStruct { name, arity: 1 } => {
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Serialize::to_value(&self.0)\n\
                     }}\n\
                 }}"
            ));
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("serde::Serialize::to_value(&self.{i}),"))
                .collect();
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                items.join("")
            ));
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => serde::Value::Str(\"{v}\".to_string()),")
                })
                .collect();
            out.push_str(&format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("")
            ));
        }
    }
    out.parse().expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: match v.get(\"{f}\") {{\n\
                             Some(x) => serde::Deserialize::from_value(x)?,\n\
                             None => serde::missing_field(\"{f}\")?,\n\
                         }},"
                    )
                })
                .collect();
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Map(_) => Ok({name} {{ {} }}),\n\
                             other => Err(serde::DeError::new(format!(\n\
                                 \"expected object for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join("")
            ));
        }
        Item::TupleStruct { name, arity: 1 } => {
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         Ok({name}(serde::Deserialize::from_value(v)?))\n\
                     }}\n\
                 }}"
            ));
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Array(items) if items.len() == {arity} =>\n\
                                 Ok({name}({})),\n\
                             other => Err(serde::DeError::new(format!(\n\
                                 \"expected {arity}-element array for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                items.join("")
            ));
        }
        Item::UnitEnum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            out.push_str(&format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         match v {{\n\
                             serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => Err(serde::DeError::new(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             other => Err(serde::DeError::new(format!(\n\
                                 \"expected string for {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("")
            ));
        }
    }
    out.parse().expect("serde derive: generated Deserialize impl must parse")
}
