//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (both `pat in strategy` and
//! `name: Type` argument forms, with an optional `#![proptest_config]`
//! header), `prop_assert!`/`prop_assert_eq!`, range and
//! regex-character-class string strategies, `prop_map`, tuples,
//! `collection::{vec, btree_map, btree_set}`, and `sample::select`.
//!
//! Differences from upstream: cases are generated from a fixed seed
//! (fully deterministic runs, no persisted failure regressions) and
//! there is **no shrinking** — a failing case reports its assertion
//! message only. Inputs are drawn via the vendored `rand` stub.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// String-literal strategies: a regex-lite pattern of character
    /// classes with repetition counts, e.g. `"[a-z]{1,8}"` or `".{0,200}"`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod arbitrary {
    //! [`any`] — the canonical strategy for a type.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (used by the `name: Type` argument
    /// form of `proptest!`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arbitrary_via_u64 {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            rng.gen_range(0x20u32..0x7F) as u8 as char
        }
    }
}

pub mod collection {
    //! Collection strategies: [`vec()`], [`btree_map`], [`btree_set`].

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// A size specification: an exact count or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap` with a size drawn from `size`. Duplicate
    /// keys are retried a bounded number of times, so a small key domain
    /// may yield fewer entries than requested.
    pub fn btree_map<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 20 + 20 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }

    /// Strategy for `BTreeSet`, with the same duplicate-retry behavior as
    /// [`btree_map`].
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod sample {
    //! [`select`] — pick uniformly from a fixed list.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy that yields a uniformly random element of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select requires a non-empty list");
        Select { items }
    }

    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }
}

pub mod string {
    //! Regex-lite string generation for `&str` strategies.
    //!
    //! Supported grammar: a sequence of atoms, each an arbitrary-char
    //! dot (`.`), a character class (`[a-z0-9 .,;!?']`, with ranges),
    //! or a literal character, optionally followed by `{m}` or `{m,n}`.

    use rand::rngs::StdRng;
    use rand::Rng;

    struct Atom {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    pub(crate) fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in compile(pattern) {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..=atom.max)
            };
            for _ in 0..n {
                out.push(atom.alphabet[rng.gen_range(0..atom.alphabet.len())]);
            }
        }
        out
    }

    fn compile(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '.' => {
                    i += 1;
                    (0x20u8..0x7F).map(char::from).collect()
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        // `a-z` range (a `-` just before `]` is literal).
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                            assert!(lo <= hi, "bad range in pattern `{pattern}`");
                            set.extend((lo..=hi).filter_map(char::from_u32));
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    assert!(i < chars.len(), "unterminated `[` in pattern `{pattern}`");
                    i += 1; // closing ]
                    set
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                i += 1;
                let mut digits = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    digits.push(chars[i]);
                    i += 1;
                }
                let min: usize = digits.parse().expect("bad `{m}` in pattern");
                let max = if i < chars.len() && chars[i] == ',' {
                    i += 1;
                    let mut digits = String::new();
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        digits.push(chars[i]);
                        i += 1;
                    }
                    digits.parse().expect("bad `{m,n}` in pattern")
                } else {
                    min
                };
                assert!(
                    i < chars.len() && chars[i] == '}',
                    "unterminated `{{` in pattern `{pattern}`"
                );
                i += 1;
                (min, max)
            } else {
                (1, 1)
            };
            assert!(min <= max, "bad repetition in pattern `{pattern}`");
            atoms.push(Atom { alphabet, min, max });
        }
        atoms
    }
}

pub mod test_runner {
    //! Case execution: config, runner, and failure type.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed (or rejected) test case.
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A test-case failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Debug for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "TestCaseError({})", self.0)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Result type of a single property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Generates inputs and runs cases. Unlike upstream, the RNG seed is
    /// fixed, so runs are fully deterministic, and failures are not
    /// shrunk.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: StdRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config, rng: StdRng::seed_from_u64(0x5EED_CA5E_D00D) }
        }

        /// Run `test` against `config.cases` generated inputs, panicking
        /// on the first failure.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> TestCaseResult,
        ) {
            for case in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                if let Err(e) = test(input) {
                    panic!(
                        "proptest: case {}/{} failed: {}",
                        case + 1,
                        self.config.cases,
                        e.0
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Alias so `prop::collection::vec(...)` etc. resolve.
    pub use crate as prop;
}

/// Assert a condition inside a property, failing the case (not
/// panicking) so the runner can report the generated input context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}:{}: {}", file!(), line!(), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{} ({:?} vs {:?})", format!($($fmt)+), l, r);
    }};
}

/// Assert two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{} (both {:?})", format!($($fmt)+), l);
    }};
}

/// Define property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of test functions
/// whose arguments are `pat in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($cfg) [] [] ($($args)*) $body);
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All arguments consumed: build the tuple strategy and run.
    (($cfg:expr) [$($pat:pat)*] [$($strat:expr)*] () $body:block) => {{
        let config = $cfg;
        let strategy = ($($strat,)*);
        let mut runner = $crate::test_runner::TestRunner::new(config);
        runner.run(&strategy, |($($pat,)*)| {
            $body
            ::std::result::Result::Ok(())
        });
    }};
    // `pat in strategy` followed by more arguments.
    (($cfg:expr) [$($pat:pat)*] [$($strat:expr)*] ($p:pat in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(($cfg) [$($pat)* $p] [$($strat)* $s] ($($rest)*) $body);
    };
    // `pat in strategy` as the final argument.
    (($cfg:expr) [$($pat:pat)*] [$($strat:expr)*] ($p:pat in $s:expr) $body:block) => {
        $crate::__proptest_case!(($cfg) [$($pat)* $p] [$($strat)* $s] () $body);
    };
    // `name: Type` followed by more arguments.
    (($cfg:expr) [$($pat:pat)*] [$($strat:expr)*] ($v:ident: $t:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(
            ($cfg) [$($pat)* $v] [$($strat)* $crate::arbitrary::any::<$t>()] ($($rest)*) $body
        );
    };
    // `name: Type` as the final argument.
    (($cfg:expr) [$($pat:pat)*] [$($strat:expr)*] ($v:ident: $t:ty) $body:block) => {
        $crate::__proptest_case!(
            ($cfg) [$($pat)* $v] [$($strat)* $crate::arbitrary::any::<$t>()] () $body
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn string_patterns_respect_alphabet_and_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[a-zA-Z0-9 .,;!?']{0,120}".generate(&mut rng);
            assert!(t.len() <= 120);
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let m = crate::collection::btree_map(0u32..1000, 0.0f64..1.0, 3..6)
                .generate(&mut rng);
            assert!((3..6).contains(&m.len()));
            let one = crate::collection::vec(0u32..10, 3).generate(&mut rng);
            assert_eq!(one.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_handles_both_arg_forms(x in 0u32..10, v: u8, s in "[a-z]{2,4}") {
            prop_assert!(x < 10);
            let _ = v;
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {} out of range", s.len());
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s, String::new());
        }

        #[test]
        fn mapped_and_selected_strategies(
            g in (0u32..3).prop_map(|x| x * 10),
            w in prop::sample::select(vec!["north", "south"]),
        ) {
            prop_assert!(g == 0 || g == 10 || g == 20);
            prop_assert!(w == "north" || w == "south");
        }
    }

    #[test]
    #[should_panic(expected = "proptest: case")]
    fn failing_property_panics_with_context() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
