//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic for a given seed, which is all
//! the simulation layers require. Streams are *not* bit-compatible with
//! the upstream `rand` crate (upstream `StdRng` is ChaCha12); every
//! consumer in this workspace only relies on determinism, not on a
//! particular stream.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from its full domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                if span == 0 {
                    // Full-domain 64-bit range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * (unit_f64(rng.next_u64()) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// A Bernoulli coin with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand::rngs::StdRng`
    /// (ChaCha12) — only determinism is promised.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as upstream does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        type Item;

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
