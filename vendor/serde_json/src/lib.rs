//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` stub's [`Value`] tree as
//! JSON. Provides the four entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].
//!
//! Output conventions follow upstream `serde_json`: two-space pretty
//! indentation, floats printed with a decimal point or exponent
//! (`1.0`, not `1`), non-finite floats rendered as `null`, and control
//! characters escaped as `\u00XX`. One deliberate difference: map
//! entries are always emitted in sorted key order (the `serde` stub
//! sorts them), so output is byte-stable across processes.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ── Writer ───────────────────────────────────────────────────────────────

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps a decimal point on integral floats (1.0,
                // not 1), matching serde_json's output.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ── Parser ───────────────────────────────────────────────────────────────

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn consume_lit(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.consume_lit("null", Value::Null),
            b't' => self.consume_lit("true", Value::Bool(true)),
            b'f' => self.consume_lit("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| {
                                Error::new("invalid unicode escape")
                            })?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a \"quote\"\nand \\ tab\t".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé""#).unwrap(), "Aé");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 0.5f64), (2, 1.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,1.0]]");
        assert_eq!(from_str::<Vec<(u32, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("{not json").is_err());
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<u32>>("[1] trailing").is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }
}
