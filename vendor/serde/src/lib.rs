//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small serialization framework under the `serde` name. It
//! keeps the parts this codebase uses — `#[derive(Serialize,
//! Deserialize)]` on plain structs and unit-variant enums, plus impls
//! for the std types that appear in those structs — and drops the rest
//! (no `Serializer`/`Deserializer` visitors, no attributes, no
//! zero-copy).
//!
//! The data model is a concrete [`Value`] tree; `serde_json` (also
//! vendored) renders and parses it. Map entries are emitted in sorted
//! key order so serialized output is byte-stable across processes — a
//! property the evaluation harness relies on when comparing serial and
//! parallel runs.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Object entries in insertion order (sorted before rendering).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up an object key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Derive support: resolve a struct field that is absent from the map.
///
/// Mirrors serde's behavior of treating a missing field as `null`-valued
/// for `Option` fields (which deserialize `Null` to `None`) while erroring
/// for everything else.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, DeError> {
    T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
}

// ── Primitive impls ───────────────────────────────────────────────────────

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::Int(n) } else { Value::UInt(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} too large")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!("expected single-char string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! ser_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {LEN}-tuple array, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

ser_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ── Maps ─────────────────────────────────────────────────────────────────
//
// JSON objects have string keys; like serde_json we stringify integer
// keys (so `HashMap<LocId, f64>` round-trips through `{"5": 0.25}`).

fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    // Try numeric readings first (covers newtype ids over integers),
    // falling back to the raw string.
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    K::from_value(&Value::Str(s.to_string()))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let some = Some(2.0f64).to_value();
        assert_eq!(Option::<f64>::from_value(&some).unwrap(), Some(2.0));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [0.25f64, 0.5, 0.75, 1.0];
        assert_eq!(<[f64; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let tup = ("x".to_string(), 3usize, 0.5f64);
        assert_eq!(
            <(String, usize, f64)>::from_value(&tup.to_value()).unwrap(),
            tup
        );
    }

    #[test]
    fn integer_keyed_map_round_trips() {
        let mut m = HashMap::new();
        m.insert(5u32, 0.25f64);
        m.insert(9u32, 0.75f64);
        let v = m.to_value();
        assert_eq!(HashMap::<u32, f64>::from_value(&v).unwrap(), m);
    }

    #[test]
    fn map_serialization_is_sorted() {
        let mut m = HashMap::new();
        for k in [30u32, 4, 100, 2] {
            m.insert(k, k as f64);
        }
        match m.to_value() {
            Value::Map(entries) => {
                let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
                let mut sorted = keys.clone();
                sorted.sort();
                assert_eq!(keys, sorted);
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
