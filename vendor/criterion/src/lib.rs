//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock timing loop
//! instead of criterion's statistical machinery. Each benchmark runs a
//! short warm-up, then a fixed measurement window, and prints mean
//! time per iteration (plus throughput when configured).

use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_millis(1000);

/// How batched inputs are sized in [`Bencher::iter_batched`]. The stub
/// runs one input per measured call regardless, so the variants only
/// document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("group {name}");
        BenchmarkGroup { group: name.to_string(), throughput: None }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, None, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Set the throughput used to report rates for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Time `f` under this group's settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, name);
        run_benchmark(&full, self.throughput, &mut f);
        self
    }

    /// End the group (upstream flushes reports here; the stub prints as
    /// it goes).
    pub fn finish(self) {}
}

fn run_benchmark(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters == 0 {
        eprintln!("  {name}: no iterations recorded");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / per_iter;
            eprintln!("  {name}: {} per iter, {rate:.0} elem/s", fmt_time(per_iter));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / per_iter;
            eprintln!("  {name}: {} per iter, {:.1} MiB/s", fmt_time(per_iter), rate / (1 << 20) as f64);
        }
        None => eprintln!("  {name}: {} per iter", fmt_time(per_iter)),
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to each benchmark closure; records the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            black_box(routine());
        }
        // Measurement window.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE {
            black_box(routine());
            iters += 1;
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Time `routine` over inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = Instant::now();
        while warm.elapsed() < WARMUP {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.elapsed += measured;
        self.iters += iters;
    }
}

/// Bundle benchmark functions into a runner function, as upstream does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
