//! Cross-crate integration tests on the `pws` facade: the full pipeline
//! from synthetic world to personalized pages, determinism, and the
//! end-to-end learning invariants the paper's claims rest on.

use pws::click::{SessionSimulator, SimConfig, UserId};
use pws::core::{BlendStrategy, EngineConfig, PersonalizationMode, PersonalizedSearchEngine};
use pws::corpus::query::{QueryClass, QueryId};
use pws::eval::experiments::{self, Protocol};
use pws::eval::{run_method, ExperimentSpec, ExperimentWorld, RunConfig};

fn small_world() -> ExperimentWorld {
    ExperimentWorld::build(ExperimentSpec::small())
}

#[test]
fn end_to_end_pipeline_runs() {
    let world = small_world();
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 1 },
    );
    for i in 0..40 {
        let user = UserId((i % world.population.len()) as u32);
        let qid = QueryId((i % world.queries.len()) as u32);
        let q = &world.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        assert!(turn.hits.len() <= 10);
        assert_eq!(turn.features.len(), turn.hits.len());
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        assert_eq!(outcome.grades.len(), turn.hits.len());
        engine.observe(&turn, &outcome.impression);
    }
    assert!(engine.user_count() > 0);
}

#[test]
fn full_run_is_deterministic_across_processes_worth_of_state() {
    let world = small_world();
    let cfg = RunConfig::quick(EngineConfig::default());
    let a = run_method(&world, &cfg);
    let b = run_method(&world, &cfg);
    assert_eq!(a.metrics.ndcg10(), b.metrics.ndcg10());
    assert_eq!(a.metrics.p_high(), b.metrics.p_high());
    assert_eq!(a.metrics.ctr_at_1(), b.metrics.ctr_at_1());
}

#[test]
fn personalization_improves_high_relevance_ranking() {
    // The core claim, verified end-to-end at test scale with a decent
    // training budget: personalized methods place highly-relevant
    // (user-specific) results better than the baseline.
    let world = small_world();
    let proto = Protocol { train_per_user: 20, eval_per_user: 10, seed: 5 };
    let t3 = experiments::t3_method_comparison(&world, &proto);
    let base = &t3.methods[0];
    let combined = t3.combined();
    assert!(
        combined.metrics.mrr_high() > base.metrics.mrr_high() * 0.95,
        "combined MRR:2 {} should not be (much) below baseline {}",
        combined.metrics.mrr_high(),
        base.metrics.mrr_high()
    );
    // At least one personalized method must clearly beat baseline MRR:2.
    let best = t3
        .methods
        .iter()
        .skip(1)
        .map(|m| m.metrics.mrr_high())
        .fold(0.0_f64, f64::max);
    assert!(
        best > base.metrics.mrr_high(),
        "no personalized method beat baseline MRR:2 ({best} vs {})",
        base.metrics.mrr_high()
    );
}

#[test]
fn location_personalization_learns_home_cities() {
    // After training, a majority of users' learned preferred city should
    // be their true home (or secondary) city. The default small world is
    // too sparse for this to be *learnable* (≈1.6 localized docs per
    // city×topic leaves some home cities without any clickable evidence),
    // so densify the geography: 8 cities over 300 docs ≈ 5 docs per
    // city×topic.
    let mut spec = ExperimentSpec::small();
    spec.world.regions = 1;
    spec.world.countries_per_region = 2;
    spec.world.states_per_country = 2;
    spec.world.cities_per_state = 2;
    let world = ExperimentWorld::build(spec);
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 11 },
    );
    // Drive realistic (interest-focused) traffic: that is the regime the
    // profiling pipeline is designed for — see `SessionSimulator::sample_query`.
    for _round in 0..40 {
        for u in 0..world.population.len() {
            let user = UserId(u as u32);
            let qid = sim.sample_query(user);
            let q = &world.queries[qid.index()];
            let intent = sim.sample_intent_city(user);
            let text = sim.render_query(q, intent);
            let turn = engine.search(user, &text);
            let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
            engine.observe(&turn, &outcome.impression);
        }
    }
    let mut correct = 0;
    let mut with_pref = 0;
    for u in world.population.iter() {
        let learned = engine
            .user_state(u.id)
            .and_then(|s| s.location.preferred_city(&world.world));
        if let Some(city) = learned {
            with_pref += 1;
            if city == u.home_city || city == u.secondary_city {
                correct += 1;
            }
        }
    }
    assert!(with_pref > 0, "no user learned any city preference");
    assert!(
        correct * 2 > with_pref,
        "only {correct}/{with_pref} learned cities are true preferences"
    );
}

#[test]
fn baseline_mode_never_uses_profiles() {
    let world = small_world();
    let mut engine = PersonalizedSearchEngine::new(
        &world.engine,
        &world.world,
        EngineConfig::for_mode(PersonalizationMode::Baseline),
    );
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 2 },
    );
    let user = UserId(0);
    for i in 0..10 {
        let qid = QueryId((i % world.queries.len()) as u32);
        let q = &world.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        assert!(!turn.personalized);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine.observe(&turn, &outcome.impression);
    }
    let state = engine.user_state(user).expect("state exists");
    assert!(state.content.is_empty(), "baseline must not build content profiles");
    assert!(state.location.is_empty(), "baseline must not build location profiles");
}

#[test]
fn fixed_blend_extremes_match_single_dimension_modes_in_beta() {
    let world = small_world();
    for (blend, expected) in [(BlendStrategy::Fixed(0.0), 0.0), (BlendStrategy::Fixed(1.0), 1.0)] {
        let mut engine = PersonalizedSearchEngine::new(
            &world.engine,
            &world.world,
            EngineConfig { blend, ..EngineConfig::default() },
        );
        let turn = engine.search(UserId(0), &world.queries[0].text);
        assert_eq!(turn.beta, expected);
    }
}

#[test]
fn explicit_location_queries_reach_the_index() {
    let world = small_world();
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 3 },
    );
    let Some(q) = world.queries.iter().find(|q| q.class == QueryClass::ExplicitLocation) else {
        panic!("small workload should include explicit-location queries");
    };
    let intent = sim.sample_intent_city(UserId(0));
    let text = sim.render_query(q, intent);
    assert!(text.contains(world.world.name(intent)));
    // The engine must tokenize multi-word city names without panicking.
    let hits = world.engine.search(&text, 10);
    let _ = hits;
}

#[test]
fn logs_serialize_and_round_trip_through_json() {
    let world = small_world();
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 4 },
    );
    let mut log = pws::click::SearchLog::new();
    for i in 0..5 {
        let user = UserId(i);
        let qid = QueryId(i);
        let q = &world.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        log.push(outcome.impression);
    }
    let json = serde_json::to_string(&log).expect("serialize");
    let back: pws::click::SearchLog = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, log);
}

#[test]
fn unknown_user_and_empty_corpus_paths_are_safe() {
    // Unknown user: state is created on demand.
    let world = small_world();
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let turn = engine.search(UserId(9999), "restaurant");
    assert!(turn.hits.len() <= 10);

    // Stopword-only query: no hits, nothing crashes.
    let turn = engine.search(UserId(0), "the of and");
    assert!(turn.hits.is_empty());
}
