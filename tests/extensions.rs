//! Integration tests for the extension features: structured queries,
//! index persistence, SpyNB pair mining, geo-smoothed scoring, session
//! refinement chains, and user-state portability — all through the facade.

use pws::click::{SessionSimulator, SimConfig, UserId};
use pws::core::{EngineConfig, PairSource, PersonalizedSearchEngine};
use pws::corpus::session::{generate_session, Refinement, SessionSpec};
use pws::corpus::vocab::Topics;
use pws::eval::{ExperimentSpec, ExperimentWorld};
use pws::geo::WorldCoords;
use pws::index::SearchEngine;
use pws::profile::SpyNbConfig;

fn world() -> ExperimentWorld {
    ExperimentWorld::build(ExperimentSpec::small())
}

#[test]
fn structured_queries_work_on_generated_corpus() {
    let w = world();
    // Every workload template should be a valid structured query too.
    for q in &w.queries {
        let hits = w.engine.search_expr(&q.text, 10).expect("bag-of-words parses");
        let plain = w.engine.search(&q.text, 10);
        let a: std::collections::HashSet<u32> = hits.iter().map(|h| h.doc).collect();
        let b: std::collections::HashSet<u32> = plain.iter().map(|h| h.doc).collect();
        assert_eq!(a, b, "expr vs plain mismatch for {:?}", q.text);
    }
    // Phrase query on a multi-word city name.
    let multiword_city: Option<pws::geo::LocId> =
        w.world.cities().find(|&c| w.world.name(c).contains(' '));
    if let Some(city) = multiword_city {
        let phrase = format!("\"{}\"", w.world.name(city));
        let hits = w.engine.search_expr(&phrase, 10).expect("phrase parses");
        // Every hit must contain the full city name in its text.
        for h in hits {
            let doc = w.corpus.doc(pws::corpus::DocId(h.doc));
            assert!(
                doc.full_text().contains(w.world.name(city)),
                "phrase match without the phrase"
            );
        }
    }
}

#[test]
fn full_index_round_trips_through_persistence() {
    let w = world();
    let bytes = w.engine.serialize();
    assert!(bytes.len() > 1000);
    let reloaded = SearchEngine::deserialize(&bytes).expect("round trip");
    for q in w.queries.iter().take(10) {
        let a: Vec<u32> = w.engine.search(&q.text, 10).iter().map(|h| h.doc).collect();
        let b: Vec<u32> = reloaded.search(&q.text, 10).iter().map(|h| h.doc).collect();
        assert_eq!(a, b, "query {:?}", q.text);
    }
}

#[test]
fn spynb_engine_learns_and_ranks() {
    let w = world();
    let cfg = EngineConfig {
        pair_source: PairSource::SpyNb(SpyNbConfig::default()),
        retrain_every: 3,
        ..EngineConfig::default()
    };
    let mut engine = PersonalizedSearchEngine::new(&w.engine, &w.world, cfg);
    let mut sim = SessionSimulator::new(
        &w.engine,
        &w.corpus,
        &w.world,
        &w.population,
        &w.queries,
        SimConfig { top_k: 10, seed: 13 },
    );
    let user = UserId(1);
    for _ in 0..12 {
        let qid = sim.sample_query(user);
        let q = &w.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine.observe(&turn, &outcome.impression);
    }
    let state = engine.user_state(user).expect("state");
    assert_eq!(state.observations, 12);
    // SpyNB mines pairs only when clicks and clear negatives coexist; the
    // engine must stay functional either way.
    let turn = engine.search(user, &w.queries[0].text);
    assert!(turn.hits.len() <= 10);
}

#[test]
fn geo_engine_runs_end_to_end() {
    let w = world();
    let coords = WorldCoords::generate(&w.world, w.spec.seed);
    let mut engine = PersonalizedSearchEngine::new(&w.engine, &w.world, EngineConfig::default())
        .with_geo(&coords, 800.0);
    let mut sim = SessionSimulator::new(
        &w.engine,
        &w.corpus,
        &w.world,
        &w.population,
        &w.queries,
        SimConfig { top_k: 10, seed: 17 },
    );
    for i in 0..15 {
        let user = UserId(i % w.population.len() as u32);
        let qid = sim.sample_query(user);
        let q = &w.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        assert_eq!(turn.features.len(), turn.hits.len());
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine.observe(&turn, &outcome.impression);
    }
}

#[test]
fn sessions_replay_through_the_engine() {
    let w = world();
    let topics = Topics::first(w.spec.corpus.num_topics);
    let mut engine =
        PersonalizedSearchEngine::new(&w.engine, &w.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &w.engine,
        &w.corpus,
        &w.world,
        &w.population,
        &w.queries,
        SimConfig { top_k: 10, seed: 23 },
    );
    let user = UserId(0);
    let qid = sim.sample_query(user);
    let q = &w.queries[qid.index()];
    let steps = generate_session(q, &topics, &SessionSpec { steps: (3, 5), specialize_prob: 0.7 }, 5);
    assert!(!steps.is_empty());
    assert_eq!(steps[0].refinement, Refinement::Initial);
    let intent = sim.sample_intent_city(user);
    for step in &steps {
        let turn = engine.search(user, &step.text);
        let outcome = sim.issue_on_hits(user, qid, intent, &step.text, &turn.hits);
        engine.observe(&turn, &outcome.impression);
    }
    assert_eq!(
        engine.user_state(user).expect("state").observations,
        steps.len() as u64
    );
}

#[test]
fn exported_profile_transfers_between_engines() {
    let w = world();
    // Pin the blend: adaptive β depends on engine-global query statistics,
    // which are deliberately NOT part of a user's exported state.
    let cfg = EngineConfig {
        blend: pws::core::BlendStrategy::Fixed(0.5),
        ..EngineConfig::default()
    };
    let mut engine_a = PersonalizedSearchEngine::new(&w.engine, &w.world, cfg.clone());
    let mut sim = SessionSimulator::new(
        &w.engine,
        &w.corpus,
        &w.world,
        &w.population,
        &w.queries,
        SimConfig { top_k: 10, seed: 29 },
    );
    let user = UserId(3);
    for _ in 0..10 {
        let qid = sim.sample_query(user);
        let q = &w.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine_a.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine_a.observe(&turn, &outcome.impression);
    }
    let exported = engine_a.export_user(user).expect("serializable").expect("warm state");

    let mut engine_b = PersonalizedSearchEngine::new(&w.engine, &w.world, cfg);
    engine_b.import_user(user, &exported).expect("import");
    for q in w.queries.iter().take(5) {
        let a: Vec<u32> = engine_a.search(user, &q.text).hits.iter().map(|h| h.doc).collect();
        let b: Vec<u32> = engine_b.search(user, &q.text).hits.iter().map(|h| h.doc).collect();
        assert_eq!(a, b, "transferred profile ranks differently for {:?}", q.text);
    }
}
