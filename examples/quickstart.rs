//! Quickstart: build a world, search, click, and watch re-ranking happen.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pws::click::{Click, Impression, ShownResult, UserId};
use pws::core::{EngineConfig, PersonalizedSearchEngine};
use pws::corpus::query::QueryId;
use pws::eval::{ExperimentSpec, ExperimentWorld};

fn main() {
    // A small deterministic universe: gazetteer + corpus + baseline index.
    let world = ExperimentWorld::build(ExperimentSpec::small());
    println!(
        "universe: {} docs, {} cities, vocabulary {}",
        world.corpus.len(),
        world.world.cities().count(),
        world.engine.vocab_size()
    );

    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let user = UserId(0);
    let query = "restaurant";

    // First page: the engine knows nothing about this user yet.
    let turn = engine.search(user, query);
    println!("\nfirst page for {query:?} (cold user):");
    for h in &turn.hits {
        println!("  {}. {} — {}", h.rank, h.title, h.url);
    }

    // The user clicks every result mentioning their city of interest —
    // here simply: the city named in the top result of some other city doc.
    // We simulate three identical sessions of clicks on the same doc.
    let Some(clicked) = turn.hits.first().cloned() else {
        println!("no results — nothing to learn from");
        return;
    };
    for _ in 0..3 {
        let turn = engine.search(user, query);
        let imp = Impression {
            user,
            query: QueryId(0),
            query_text: query.into(),
            results: turn
                .hits
                .iter()
                .map(|h| ShownResult {
                    doc: h.doc,
                    rank: h.rank,
                    url: h.url.to_string(),
                    title: h.title.to_string(),
                    snippet: h.snippet.clone(),
                })
                .collect(),
            clicks: turn
                .hits
                .iter()
                .filter(|h| h.doc == clicked.doc)
                .map(|h| Click { doc: h.doc, rank: h.rank, dwell: 600 })
                .collect(),
        };
        engine.observe(&turn, &imp);
    }

    // The engine has now mined concepts from the clicked snippet and built
    // a profile; the clicked document's concepts rise.
    let state = engine.user_state(user).expect("user state exists");
    println!("\nlearned content concepts (top 5):");
    for (term, w) in state.content.top_concepts(5) {
        println!("  {term:<20} {w:+.3}");
    }
    println!("\nlearned locations (top 3):");
    for (loc, w) in state.location.top_locations(3) {
        println!("  {:<20} {w:+.3}", world.world.path_string(loc));
    }

    let turn = engine.search(user, query);
    println!("\npage after 3 sessions of clicks on {:?}:", clicked.title);
    for h in &turn.hits {
        let marker = if h.doc == clicked.doc { "  ← clicked before" } else { "" };
        println!("  {}. {} — {}{}", h.rank, h.title, h.url, marker);
    }
    assert_eq!(turn.hits[0].doc, clicked.doc, "clicked doc should now lead");
    println!("\nthe clicked document now ranks first. β used: {:.2}", turn.beta);
}
