//! The GPS extension: location profiles smoothed by physical distance.
//!
//! A user whose clicks concentrate on one city also gets a (decaying)
//! preference for geographically nearby cities — useful when the home
//! city has no matching result but a neighbouring one does.
//!
//! ```text
//! cargo run --release --example geo_preferences
//! ```

use pws::eval::{ExperimentSpec, ExperimentWorld};
use pws::geo::WorldCoords;

fn main() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let coords = WorldCoords::generate(&world.world, world.spec.seed);

    // Pick a city and look at its geographic neighbourhood.
    let home = world.population.users[0].home_city;
    println!(
        "home city: {} at ({:.1}°, {:.1}°)",
        world.world.name(home),
        coords.get(home).lat,
        coords.get(home).lon
    );
    println!("\nnearest cities (tree locality ⇒ geographic locality):");
    for (city, km) in coords.nearest_cities(&world.world, home, 6) {
        let same_state = world.world.parent(city) == world.world.parent(home);
        println!(
            "  {:<22} {:>8.0} km   {}",
            world.world.name(city),
            km,
            if same_state { "same state".to_string() } else { world.world.path_string(city) }
        );
    }

    // Build a location profile by hand and compare exact vs geo scoring.
    use pws::click::{Click, Impression, ShownResult, UserId};
    use pws::concepts::{ConceptConfig, LocationConceptConfig, QueryConceptOntology};
    use pws::corpus::query::QueryId;
    use pws::geo::LocationMatcher;
    use pws::profile::{LocationProfile, LocationProfileConfig};

    let matcher = LocationMatcher::build(&world.world);
    let home_name = world.world.name(home).to_string();
    let snippets = vec![format!("best seafood in {home_name}"), "other text".to_string()];
    let onto = QueryConceptOntology::extract(
        "seafood",
        &snippets,
        &matcher,
        &world.world,
        &ConceptConfig { min_support: 0.0, min_snippet_freq: 1, ..Default::default() },
        &LocationConceptConfig { min_support: 0.0, ..Default::default() },
    );
    let imp = Impression {
        user: UserId(0),
        query: QueryId(0),
        query_text: "seafood".into(),
        results: snippets
            .iter()
            .enumerate()
            .map(|(i, s)| ShownResult {
                doc: i as u32,
                rank: i + 1,
                url: format!("u{i}"),
                title: "t".into(),
                snippet: s.clone(),
            })
            .collect(),
        clicks: vec![Click { doc: 0, rank: 1, dwell: 600 }],
    };
    let mut profile = LocationProfile::new();
    profile.observe(&onto, &imp, &world.world, &LocationProfileConfig::default());

    println!("\nafter one satisfied click on a {home_name} result:");
    println!("{:<22} {:>12} {:>14}", "city", "exact score", "geo (500 km)");
    let mut shown = 0;
    for city in world.world.cities() {
        let exact = profile.score_locations([city].into_iter());
        let geo = profile.score_locations_geo([city].into_iter(), &coords, 500.0);
        if exact.abs() > 1e-9 || geo > 0.01 {
            println!("{:<22} {:>12.3} {:>14.3}", world.world.name(city), exact, geo);
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
    }
    println!("\nexact scoring endorses only the clicked city; geo scoring\nspreads the preference to physical neighbours.");
}
