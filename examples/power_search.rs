//! Power-user search features of the underlying engine: phrase queries,
//! boolean operators, and index persistence (save to bytes, reload,
//! identical results — no re-indexing on restart).
//!
//! ```text
//! cargo run --release --example power_search
//! ```

use pws::eval::{ExperimentSpec, ExperimentWorld};
use pws::index::SearchEngine;

fn main() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let engine = &world.engine;

    // Pick a multi-word city so the phrase query is meaningful.
    let city = world
        .world
        .cities()
        .find(|&c| world.world.name(c).contains(' '))
        .expect("small world has multi-word city names");
    let city_name = world.world.name(city).to_string();

    println!("── structured queries ──");
    for q in [
        format!("\"{city_name}\""),
        format!("restaurant AND \"{city_name}\""),
        "seafood OR sushi".to_string(),
        "restaurant AND NOT buffet".to_string(),
        "(hotel OR resort) AND booking".to_string(),
    ] {
        match engine.search_expr(&q, 5) {
            Ok(hits) => {
                println!("\n{q}  →  {} hits", hits.len());
                for h in hits.iter().take(3) {
                    println!("  {}. {}", h.rank, h.title);
                }
            }
            Err(e) => println!("\n{q}  →  {e}"),
        }
    }

    // Malformed queries fail cleanly.
    println!("\n── error handling ──");
    for bad in ["\"unterminated", "AND", "(open"] {
        println!("{bad:?} → {}", engine.search_expr(bad, 5).unwrap_err());
    }

    // Persistence: serialize, reload, verify identity.
    println!("\n── persistence ──");
    let bytes = engine.serialize();
    println!(
        "serialized {} docs / {} terms into {} KiB",
        engine.doc_count(),
        engine.vocab_size(),
        bytes.len() / 1024
    );
    let reloaded = SearchEngine::deserialize(&bytes).expect("round trip");
    let q = "seafood restaurant";
    let a = engine.search(q, 10);
    let b = reloaded.search(q, 10);
    assert_eq!(
        a.iter().map(|h| h.doc).collect::<Vec<_>>(),
        b.iter().map(|h| h.doc).collect::<Vec<_>>()
    );
    println!("reloaded engine returns identical results for {q:?} ✓");
}
