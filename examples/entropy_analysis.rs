//! When (not) to personalize: per-query click entropies and the
//! effectiveness-derived blend weight β.
//!
//! ```text
//! cargo run --release --example entropy_analysis
//! ```

use pws::click::{SessionSimulator, SimConfig, UserId};
use pws::core::{EngineConfig, PersonalizationMode, PersonalizedSearchEngine};
use pws::corpus::query::QueryId;
use pws::entropy::{Effectiveness, EffectivenessConfig, QueryStats};
use pws::eval::{ExperimentSpec, ExperimentWorld};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn main() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let cfg = EngineConfig::for_mode(PersonalizationMode::Baseline);
    let mut engine = PersonalizedSearchEngine::new(&world.engine, &world.world, cfg);
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 5 },
    );
    let mut sched = StdRng::seed_from_u64(17);

    // Collect click statistics per query template over many users.
    let mut stats: HashMap<QueryId, QueryStats> = HashMap::new();
    for i in 0..world.population.len() * 30 {
        let user = UserId((i % world.population.len()) as u32);
        let qid = QueryId(sched.gen_range(0..world.queries.len()) as u32);
        let q = &world.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        stats.entry(qid).or_default().observe(&turn.ontology, &outcome.impression);
        engine.observe(&turn, &outcome.impression);
    }

    // Report per query: entropies → effectiveness → β and the personalize
    // decision.
    let eff_cfg = EffectivenessConfig::default();
    println!(
        "{:<28} {:<10} {:<8} {:<8} {:<8} {:<8} {:<6} personalize?",
        "query", "class", "clicks", "H_url", "H_cont", "H_loc", "β",
    );
    let mut rows: Vec<(QueryId, &QueryStats)> = stats.iter().map(|(q, s)| (*q, s)).collect();
    rows.sort_by_key(|(q, _)| *q);
    for (qid, s) in rows.into_iter().take(20) {
        let q = &world.queries[qid.index()];
        let eff = Effectiveness::from_stats(s, &eff_cfg);
        println!(
            "{:<28} {:<10} {:<8} {:<8.2} {:<8.2} {:<8.2} {:<6.2} {}",
            q.text,
            format!("{:?}", q.class),
            s.clicks(),
            s.click_entropy(),
            s.content_entropy(),
            s.location_entropy(),
            eff.beta(),
            if eff.should_personalize(&eff_cfg) { "yes" } else { "no" },
        );
    }

    // Aggregate view. Note the (at first) counter-intuitive direction:
    // *content* queries show higher pooled location entropy — their clicks
    // scatter uniformly over whatever cities happen to appear (noise),
    // while location-sensitive clicks concentrate on the population's home
    // cities. Entropy alone does not separate "diverse intents" from
    // "uniform noise"; the effectiveness estimate therefore shrinks by
    // click evidence, and F5 shows the resulting adaptive β still beats
    // every fixed blend.
    let mean = |class: pws::corpus::query::QueryClass| -> f64 {
        let vals: Vec<f64> = stats
            .iter()
            .filter(|(q, _)| world.queries[q.index()].class == class)
            .map(|(_, s)| s.location_entropy())
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    println!(
        "\nmean pooled location click-entropy — content: {:.2} (scatter/noise), \
         location-sensitive: {:.2} (concentrated on home cities)",
        mean(pws::corpus::query::QueryClass::Content),
        mean(pws::corpus::query::QueryClass::LocationSensitive),
    );
}
