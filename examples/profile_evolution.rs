//! Watch a user profile converge to the user's latent preferences as
//! clicks accumulate — the simulator knows the ground truth, so we can
//! print both side by side.
//!
//! ```text
//! cargo run --release --example profile_evolution
//! ```

use pws::click::{SessionSimulator, SimConfig, UserId};
use pws::core::{EngineConfig, PersonalizedSearchEngine};
use pws::corpus::query::QueryId;
use pws::eval::{ExperimentSpec, ExperimentWorld};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 21 },
    );
    let mut sched = StdRng::seed_from_u64(13);

    let user = UserId(2);
    let truth = world.population.user(user);
    println!(
        "latent truth for user {}: home city {:?} (affinity {:.2}), noise {:.2}",
        user.0,
        world.world.name(truth.home_city),
        truth.loc_affinity,
        truth.noise
    );

    println!(
        "\n{:<6} {:<14} {:<22} {:<30}",
        "t", "observations", "preferred city", "top content concepts"
    );
    for t in 1..=60 {
        let qid = QueryId(sched.gen_range(0..world.queries.len()) as u32);
        let q = &world.queries[qid.index()];
        let intent = sim.sample_intent_city(user);
        let text = sim.render_query(q, intent);
        let turn = engine.search(user, &text);
        let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
        engine.observe(&turn, &outcome.impression);

        if t % 10 == 0 {
            let state = engine.user_state(user).expect("state exists");
            let city = state
                .location
                .preferred_city(&world.world)
                .map(|c| world.world.name(c).to_string())
                .unwrap_or_else(|| "—".into());
            let concepts: Vec<String> =
                state.content.top_concepts(3).into_iter().map(|(c, _)| c).collect();
            let correct = state.location.preferred_city(&world.world) == Some(truth.home_city);
            println!(
                "{:<6} {:<14} {:<22} {:<30}",
                t,
                state.observations,
                format!("{}{}", city, if correct { " ✓" } else { "" }),
                concepts.join(", ")
            );
        }
    }

    let state = engine.user_state(user).expect("state exists");
    println!("\nfinal RankSVM weights:");
    for (name, w) in pws::profile::FEATURE_NAMES.iter().zip(&state.model.weights) {
        println!("  {name:<18} {w:+.3}");
    }
}
