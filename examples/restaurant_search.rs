//! The paper's motivating scenario: two users type the *same* query
//! ("restaurant"), live in different cities, and should get different
//! pages — without ever typing a city name.
//!
//! ```text
//! cargo run --release --example restaurant_search
//! ```

use pws::click::{SessionSimulator, SimConfig};
use pws::core::{EngineConfig, PersonalizedSearchEngine};
use pws::corpus::query::{QueryClass, QueryId};
use pws::eval::{ExperimentSpec, ExperimentWorld};

fn main() {
    let world = ExperimentWorld::build(ExperimentSpec::small());
    let mut engine =
        PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
    let mut sim = SessionSimulator::new(
        &world.engine,
        &world.corpus,
        &world.world,
        &world.population,
        &world.queries,
        SimConfig { top_k: 10, seed: 7 },
    );

    // Pick a location-sensitive template and two users in different cities.
    let query = world
        .queries
        .iter()
        .find(|q| q.class == QueryClass::LocationSensitive)
        .expect("workload has location-sensitive queries");
    let (alice, bob) = {
        let a = &world.population.users[0];
        let b = world
            .population
            .iter()
            .find(|u| u.home_city != a.home_city)
            .expect("two users in different cities");
        (a.id, b.id)
    };
    println!("query template: {:?}", query.text);
    println!(
        "alice lives in {:?}, bob in {:?}",
        world.world.name(world.population.user(alice).home_city),
        world.world.name(world.population.user(bob).home_city),
    );

    // Both users search and click naturally for 25 sessions.
    for round in 0..25 {
        for user in [alice, bob] {
            // Rotate through the whole workload so profiles see variety.
            let qid = QueryId(((round * 7 + user.0 as usize) % world.queries.len()) as u32);
            let q = &world.queries[qid.index()];
            let intent = sim.sample_intent_city(user);
            let text = sim.render_query(q, intent);
            let turn = engine.search(user, &text);
            let outcome = sim.issue_on_hits(user, qid, intent, &text, &turn.hits);
            engine.observe(&turn, &outcome.impression);
        }
    }

    // Same query, two users, two pages.
    println!("\n── pages for the same query {:?} ──", query.text);
    for (name, user) in [("alice", alice), ("bob", bob)] {
        let turn = engine.search(user, &query.text);
        let home = world.population.user(user).home_city;
        let home_name = world.world.name(home).to_string();
        println!("\n{name} (home: {home_name}), β = {:.2}:", turn.beta);
        for h in turn.hits.iter().take(5) {
            let doc = world.corpus.doc(pws::corpus::DocId(h.doc));
            let place = doc
                .city
                .map(|c| world.world.name(c).to_string())
                .unwrap_or_else(|| "—".to_string());
            let marker = if doc.city == Some(home) { " ← home city" } else { "" };
            println!("  {}. [{}] {}{}", h.rank, place, h.title, marker);
        }
        let learned = engine
            .user_state(user)
            .and_then(|s| s.location.preferred_city(&world.world))
            .map(|c| world.world.name(c).to_string());
        println!("  learned preferred city: {learned:?}");
    }
}
