//! # pws — Personalized Web Search with Location Preferences
//!
//! A from-scratch Rust reproduction of the ICDE 2010 framework for
//! personalizing web-search results with **content** and **location**
//! preferences mined from clickthrough data.
//!
//! This facade crate re-exports the whole workspace; see `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ## Sixty-second tour
//!
//! ```
//! use pws::eval::{ExperimentSpec, ExperimentWorld};
//! use pws::core::{EngineConfig, PersonalizedSearchEngine};
//! use pws::click::UserId;
//!
//! // A deterministic synthetic universe: gazetteer, corpus, users, queries.
//! let world = ExperimentWorld::build(ExperimentSpec::small());
//!
//! // The personalized engine over the baseline index.
//! let mut engine =
//!     PersonalizedSearchEngine::new(&world.engine, &world.world, EngineConfig::default());
//!
//! // Serve a page for a user; snippets, ranks, concepts all come back.
//! let turn = engine.search(UserId(0), "restaurant");
//! assert!(turn.hits.len() <= 10);
//! ```
//!
//! The runnable examples go further:
//!
//! * `cargo run --example quickstart` — index, search, click, re-rank;
//! * `cargo run --example restaurant_search` — the motivating scenario:
//!   identical query, two users, two cities, two different pages;
//! * `cargo run --example profile_evolution` — watch profiles converge;
//! * `cargo run --example entropy_analysis` — when not to personalize.

/// Text-processing substrate (tokenizer, stemmer, stopwords, n-grams).
pub use pws_text as text;

/// Location ontology, synthetic gazetteer, and place-name matching.
pub use pws_geo as geo;

/// Synthetic web corpus and query workload generation.
pub use pws_corpus as corpus;

/// In-memory search engine (inverted index, BM25, snippets).
pub use pws_index as index;

/// Clickthrough substrate: simulated users, click models, logs.
pub use pws_click as click;

/// Content/location concept extraction from snippets.
pub use pws_concepts as concepts;

/// Ontology-based user profiles, features, preference pairs.
pub use pws_profile as profile;

/// Linear pairwise RankSVM.
pub use pws_ranksvm as ranksvm;

/// Click entropies and personalization effectiveness.
pub use pws_entropy as entropy;

/// The personalized search engine (the paper's contribution).
pub use pws_core as core;

/// Metrics, experiment harness, and the reproduced evaluation.
pub use pws_eval as eval;
