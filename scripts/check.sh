#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass, runnable fully offline.
#
#   ./scripts/check.sh          # build + tests + fmt + clippy
#   ./scripts/check.sh --fast   # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build (debug, offline)"
cargo build --workspace --offline

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build (release, offline)"
    cargo build --workspace --release --offline
fi

echo "==> cargo test (workspace, offline)"
cargo test -q --workspace --offline

echo "==> chaos suite (pws-chaos)"
cargo test -q -p pws-chaos --offline

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    # Scoped to the crates introduced/authored after the seed; the seed
    # sources predate a rustfmt pass and are left untouched.
    cargo fmt --check -p pws-obs
else
    echo "    (rustfmt not installed; skipped)"
fi

echo "==> cargo clippy -D warnings (workspace)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --offline --all-targets -- -D warnings
else
    echo "    (clippy not installed; skipped)"
fi

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "==> retrieval fast-path correctness gate (retrieval_bench --smoke)"
# The DAAT/MaxScore fast path, the serving layer's retrieval cache, and
# the segmented on-disk index (Block-Max WAND, exercised through a full
# write→load→search round trip plus a corruption-detection check) must
# return bit-identical results to the naive reference scorer on the
# smoke experiment world; any disagreement exits non-zero.
if [[ $fast -eq 0 ]]; then
    cargo run -q --release -p pws-bench --bin retrieval_bench --offline -- --smoke
else
    cargo run -q -p pws-bench --bin retrieval_bench --offline -- --smoke
fi

echo "==> stage-name registry gate (docs/ARCHITECTURE.md)"
# Every stage name used in production code must be documented in the
# registry table. Names under test./docs. are reserved for tests and
# doc examples. shard_stages("p", n, "op") registers p{i}.op.
registry=docs/ARCHITECTURE.md
stage_names=$(
    grep -rh 'pws_obs::stage("' crates --include='*.rs' \
        | grep -v '^\s*//' \
        | grep -oP 'pws_obs::stage\("\K[^"]+'
    grep -rh 'shard_stages(' crates --include='*.rs' \
        | grep -v '^\s*//' \
        | perl -ne 'print $1 . "{i}." . $2 . "\n" if /shard_stages\("([^"]+)",\s*[^,]+,\s*"([^"]+)"\)/'
)
missing=0
for name in $(printf '%s\n' "$stage_names" | sort -u); do
    case "$name" in test.*|docs.*) continue ;; esac
    if ! grep -qF "\`$name\`" "$registry"; then
        echo "    stage \"$name\" is not in the $registry registry table"
        missing=1
    fi
done
if [[ $missing -ne 0 ]]; then
    echo "FAIL: undocumented stage names (add them to $registry)"
    exit 1
fi

echo "==> segment-format section gate (docs/INDEX_FORMAT.md)"
# The id/name pairs of enum SectionId (the segment writer's section
# list) must match the section table documented in the format spec —
# in both directions, so neither the code nor the doc can drift.
spec=docs/INDEX_FORMAT.md
enum_src=crates/pws-index/src/segfile.rs
enum_pairs=$(awk '/^pub enum SectionId \{/,/^\}/' "$enum_src" \
    | grep -oP '^\s+\K[A-Za-z]+\s*=\s*[0-9]+' \
    | sed -E 's/\s*=\s*/ /')
doc_pairs=$(grep -oP '^\|\s*[0-9]+\s*\|\s*`[A-Za-z]+`' "$spec" \
    | sed -E 's/^\|\s*([0-9]+)\s*\|\s*`([A-Za-z]+)`/\2 \1/')
if [[ -z "$enum_pairs" || -z "$doc_pairs" ]]; then
    echo "FAIL: could not extract SectionId pairs from $enum_src or $spec"
    exit 1
fi
if ! diff <(printf '%s\n' "$enum_pairs" | sort) \
          <(printf '%s\n' "$doc_pairs" | sort); then
    echo "FAIL: SectionId enum and the $spec section table disagree"
    exit 1
fi

echo "==> store-format section gate (docs/STORE_FORMAT.md)"
# Same two-way sync for the user-record codec: enum SectionId in
# pws-store must match the section table in the store format spec.
spec=docs/STORE_FORMAT.md
enum_src=crates/pws-store/src/codec.rs
enum_pairs=$(awk '/^pub enum SectionId \{/,/^\}/' "$enum_src" \
    | grep -oP '^\s+\K[A-Za-z]+\s*=\s*[0-9]+' \
    | sed -E 's/\s*=\s*/ /')
doc_pairs=$(grep -oP '^\|\s*[0-9]+\s*\|\s*`[A-Za-z]+`' "$spec" \
    | sed -E 's/^\|\s*([0-9]+)\s*\|\s*`([A-Za-z]+)`/\2 \1/')
if [[ -z "$enum_pairs" || -z "$doc_pairs" ]]; then
    echo "FAIL: could not extract SectionId pairs from $enum_src or $spec"
    exit 1
fi
if ! diff <(printf '%s\n' "$enum_pairs" | sort) \
          <(printf '%s\n' "$doc_pairs" | sort); then
    echo "FAIL: SectionId enum and the $spec section table disagree"
    exit 1
fi

echo "==> store-tier replay-equivalence gate (store_smoke)"
# Write → evict → fault-in → replay must be byte-identical to an
# always-resident run, including across a process-restart simulation;
# any divergence or store I/O error exits non-zero.
if [[ $fast -eq 0 ]]; then
    cargo run -q --release -p pws-bench --bin store_smoke --offline
else
    cargo run -q -p pws-bench --bin store_smoke --offline
fi

echo "==> lock-poison recovery gate (no .expect(\"…poisoned\") in serve/core)"
# The serving path must recover from poisoned locks (clear_poison +
# serve.lock_recovered + targeted eviction), never crash on them. See
# "Failure modes & degradation" in docs/ARCHITECTURE.md.
if grep -rn 'expect("[^"]*poisoned' crates/pws-serve crates/pws-core --include='*.rs'; then
    echo "FAIL: .expect(\"…poisoned\") found — use lock recovery (lock_or_recover) instead"
    exit 1
fi

echo "OK: all tier-1 checks passed"
