#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass, runnable fully offline.
#
#   ./scripts/check.sh          # build + tests + fmt + clippy
#   ./scripts/check.sh --fast   # skip the release build
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

echo "==> cargo build (debug, offline)"
cargo build --workspace --offline

if [[ $fast -eq 0 ]]; then
    echo "==> cargo build (release, offline)"
    cargo build --workspace --release --offline
fi

echo "==> cargo test (workspace, offline)"
cargo test -q --workspace --offline

echo "==> cargo fmt --check"
if cargo fmt --version >/dev/null 2>&1; then
    # Scoped to the crates introduced/authored after the seed; the seed
    # sources predate a rustfmt pass and are left untouched.
    cargo fmt --check -p pws-obs
else
    echo "    (rustfmt not installed; skipped)"
fi

echo "==> cargo clippy -D warnings (workspace)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --offline --all-targets -- -D warnings
else
    echo "    (clippy not installed; skipped)"
fi

echo "OK: all tier-1 checks passed"
